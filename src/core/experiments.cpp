#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dvs/regulator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace razorbus::core {

lut::LutConfig lut_config_for_tolerance(double tol, lut::LutConfig base) {
  if (tol > 0.0) {
    base.tolerance.relative = tol;
    base.tolerance.delay_abs_s = tol * 1e-10;
    base.tolerance.energy_abs_j = tol * 1e-13;
  }
  return base;
}

namespace {

// Length of the next batched span for a closed-loop driver positioned at
// `cycle`: up to the end of the trace, the controller window, or the cycle
// at which a pending regulator change lands — whichever comes first. The
// regulator output is constant across such a span, so the whole span can
// go through BusSimulator::run in one call.
std::uint64_t next_segment(std::uint64_t remaining_in_trace,
                           std::uint64_t remaining_in_window,
                           std::uint64_t next_change_cycle, std::uint64_t cycle) {
  std::uint64_t seg = std::min(remaining_in_trace, remaining_in_window);
  if (next_change_cycle != dvs::VoltageRegulator::kNoPendingChange &&
      next_change_cycle > cycle)
    seg = std::min(seg, next_change_cycle - cycle);
  return seg;
}

// A trace wider than the bus would silently drop its high lanes; narrower
// traces are fine (the surplus wires hold).
void check_trace_width(const DvsBusSystem& system, const trace::Trace& trace) {
  if (trace.n_bits > system.design().n_bits)
    throw std::invalid_argument(
        "experiment: trace '" + trace.name + "' is " + std::to_string(trace.n_bits) +
        " bits wide but the bus has " + std::to_string(system.design().n_bits) +
        " wires");
}

void check_source_width(const DvsBusSystem& system, const trace::TraceSource& source) {
  if (source.n_bits() > system.design().n_bits)
    throw std::invalid_argument(
        "experiment: trace '" + source.name() + "' is " +
        std::to_string(source.n_bits()) + " bits wide but the bus has " +
        std::to_string(system.design().n_bits) + " wires");
}

// Serves one stream through a fixed block buffer. The closed-loop drivers
// ask it for LOGICAL segments (up to a controller-window or regulator
// boundary); the feeder satisfies a segment from as many buffered chunks
// as needed, so block boundaries never change where control decisions
// fall — that, plus the engine's span-split invariance, is what makes the
// streamed reports bit-identical to the materialized ones.
class StreamFeeder {
 public:
  StreamFeeder(const trace::TraceSource& prototype, std::size_t block_cycles)
      : source_(prototype.clone()), buffer_(block_cycles) {
    if (block_cycles == 0)
      throw std::invalid_argument("stream: block_cycles must be > 0");
  }

  // True when at least one word is available (refilling if necessary).
  bool has_more() {
    if (pos_ == filled_ && !eof_) refill();
    return pos_ < filled_;
  }

  struct FeedResult {
    std::uint64_t cycles = 0;
    std::uint64_t errors = 0;
  };

  // Drive up to `cycles` words through `sim` (and mirror every chunk into
  // `baseline` when given); short only when the stream ends.
  FeedResult feed(bus::BusSimulator& sim, bus::BusSimulator* baseline,
                  std::uint64_t cycles) {
    FeedResult out;
    while (out.cycles < cycles && has_more()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(filled_ - pos_, cycles - out.cycles));
      const bus::RunningTotals d = sim.run(buffer_.data() + pos_, n);
      if (baseline != nullptr) baseline->run(buffer_.data() + pos_, n);
      pos_ += n;
      out.cycles += d.cycles;
      out.errors += d.errors;
    }
    return out;
  }

  void account(StreamStats* stats, std::size_t block_cycles) const {
    if (stats == nullptr) return;
    stats->block_cycles = block_cycles;
    stats->blocks += blocks_;
    stats->cycles += streamed_;
    stats->peak_buffer_words = std::max(stats->peak_buffer_words, buffer_.size());
  }

 private:
  void refill() {
    filled_ = source_->next_block(buffer_.data(), buffer_.size());
    pos_ = 0;
    if (filled_ == 0) {
      eof_ = true;
    } else {
      ++blocks_;
      streamed_ += filled_;
    }
  }

  std::unique_ptr<trace::TraceSource> source_;
  std::vector<BusWord> buffer_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  bool eof_ = false;
  std::uint64_t blocks_ = 0;
  std::uint64_t streamed_ = 0;
};

// Nominal-supply conventional-bus simulator matching
// BusSimulator::run_reference (the default recovery model, supply pinned
// at nominal): fed in lockstep with the DVS simulator, its totals equal a
// run_reference pass over the materialized words.
bus::BusSimulator make_baseline_sim(const DvsBusSystem& system,
                                    const tech::PvtCorner& environment) {
  bus::BusSimulator sim(system.design(), system.table(), environment);
  sim.set_supply(system.design().node.vdd_nominal);
  return sim;
}

// Monte-Carlo operating-point draw shared by both pvt_sample_gains forms:
// the population is part of the streamed/materialized parity contract, so
// there is exactly one copy of the distribution.
tech::PvtCorner draw_pvt_corner(Rng& rng) {
  tech::PvtCorner corner;
  // Process corners are discrete (die-to-die); skew toward typical.
  const double p = rng.next_double();
  corner.process = p < 0.2   ? tech::ProcessCorner::slow
                   : p < 0.8 ? tech::ProcessCorner::typical
                             : tech::ProcessCorner::fast;
  corner.temp_c = rng.uniform(25.0, 100.0);
  corner.ir_drop_fraction = rng.uniform(0.0, 0.10);

  // Temperatures are characterised at 25/100C; evaluate at the nearer one
  // (the table axis is coarse by design, like the paper's).
  corner.temp_c = corner.temp_c < 62.5 ? 25.0 : 100.0;
  return corner;
}

// ------------------------------------------------- batched (simd) helpers
//
// EngineMode::simd routes the point loops below through
// bus::MultiPointEngine (DESIGN.md §13): one pass over the trace per CHUNK
// of operating points instead of one pass per point. Per-point results are
// bit-identical to the scalar loop at any chunking, so the chunk count is
// free to follow the thread pool — reports never depend on it.

// Supply points for one environment, in `supplies` order.
std::vector<bus::OperatingPoint> supply_points(const std::vector<double>& supplies,
                                               std::size_t lo, std::size_t hi,
                                               const tech::PvtCorner& environment) {
  std::vector<bus::OperatingPoint> points;
  points.reserve(hi - lo);
  for (std::size_t s = lo; s < hi; ++s) points.push_back({supplies[s], environment});
  return points;
}

std::size_t sweep_chunks(std::size_t n_points) {
  return std::min<std::size_t>(n_points,
                               std::max<std::size_t>(1, util::global_threads()));
}

std::vector<SweepPoint> collect_sweep_points(const bus::MultiPointEngine& engine,
                                             const std::vector<bus::OperatingPoint>& points) {
  std::vector<SweepPoint> out(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bus::RunningTotals totals = engine.totals(i);
    out[i].supply = points[i].supply;
    out[i].error_rate = totals.error_rate();
    out[i].bus_energy = totals.bus_energy;
    out[i].total_energy = totals.total_energy();
  }
  return out;
}

std::vector<SweepPoint> sweep_points_batched(const DvsBusSystem& system,
                                             const tech::PvtCorner& environment,
                                             const std::vector<double>& supplies,
                                             double timing_jitter_sigma,
                                             const std::vector<trace::Trace>& traces) {
  const std::size_t n_chunks = sweep_chunks(supplies.size());
  const std::size_t per = (supplies.size() + n_chunks - 1) / n_chunks;
  auto chunks = util::parallel_map(util::global_pool(), n_chunks, [&](std::size_t c) {
    const std::size_t lo = std::min(supplies.size(), c * per);
    const std::size_t hi = std::min(supplies.size(), lo + per);
    if (lo >= hi) return std::vector<SweepPoint>{};
    const auto points = supply_points(supplies, lo, hi, environment);
    bus::MultiPointConfig config;
    config.timing_jitter_sigma = timing_jitter_sigma;
    bus::MultiPointEngine engine(system.design(), system.table(), points, config);
    for (const auto& t : traces) engine.run(t.words);
    return collect_sweep_points(engine, points);
  });
  std::vector<SweepPoint> points;
  points.reserve(supplies.size());
  for (auto& chunk : chunks) points.insert(points.end(), chunk.begin(), chunk.end());
  return points;
}

// Streamed twin: each chunk drains its own clone of the stream through the
// batched engine — N supplies per drain instead of one, so a 20-supply
// sweep pulls the stream ~threads times instead of 20.
std::vector<SweepPoint> sweep_points_batched_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<double>& supplies, double timing_jitter_sigma,
    const trace::TraceSource& source, const StreamConfig& stream,
    std::vector<StreamStats>& shard_stats) {
  if (stream.block_cycles == 0)
    throw std::invalid_argument("stream: block_cycles must be > 0");
  const std::size_t n_chunks = sweep_chunks(supplies.size());
  const std::size_t per = (supplies.size() + n_chunks - 1) / n_chunks;
  shard_stats.assign(n_chunks, StreamStats{});
  auto chunks = util::parallel_map(util::global_pool(), n_chunks, [&](std::size_t c) {
    const std::size_t lo = std::min(supplies.size(), c * per);
    const std::size_t hi = std::min(supplies.size(), lo + per);
    if (lo >= hi) return std::vector<SweepPoint>{};
    const auto points = supply_points(supplies, lo, hi, environment);
    bus::MultiPointConfig config;
    config.timing_jitter_sigma = timing_jitter_sigma;
    bus::MultiPointEngine engine(system.design(), system.table(), points, config);

    const auto clone = source.clone();
    std::vector<BusWord> buffer(stream.block_cycles);
    StreamStats& stats = shard_stats[c];
    stats.block_cycles = stream.block_cycles;
    stats.peak_buffer_words = buffer.size();
    for (;;) {
      const std::size_t n = clone->next_block(buffer.data(), buffer.size());
      if (n == 0) break;
      engine.run(buffer.data(), n);
      ++stats.blocks;
      stats.cycles += n;
    }
    return collect_sweep_points(engine, points);
  });
  std::vector<SweepPoint> points;
  points.reserve(supplies.size());
  for (auto& chunk : chunks) points.insert(points.end(), chunk.begin(), chunk.end());
  return points;
}

}  // namespace

void StreamStats::merge(const StreamStats& other) {
  block_cycles = std::max(block_cycles, other.block_cycles);
  blocks += other.blocks;
  cycles += other.cycles;
  peak_buffer_words = std::max(peak_buffer_words, other.peak_buffer_words);
}

StaticSweepResult static_voltage_sweep(const DvsBusSystem& system,
                                       const tech::PvtCorner& environment,
                                       const std::vector<trace::Trace>& traces,
                                       double timing_jitter_sigma,
                                       bus::EngineMode engine) {
  for (const auto& t : traces) check_trace_width(system, t);
  StaticSweepResult result;
  result.floor_supply = system.shadow_floor(environment);
  const double vnom = system.design().node.vdd_nominal;
  const double step = 0.020;

  // Supplies from the floor to nominal, anchored at the nominal grid.
  std::vector<double> supplies;
  for (double v = vnom; v > result.floor_supply - 1e-9; v -= step) supplies.push_back(v);
  std::sort(supplies.begin(), supplies.end());

  if (engine == bus::EngineMode::simd) {
    // Batched: chunks of supplies share one trace pass each (bit-identical
    // to the per-supply loop below — see the multipoint parity suite).
    result.points = sweep_points_batched(system, environment, supplies,
                                         timing_jitter_sigma, traces);
  } else {
    // One shard per supply point; each shard owns a fresh simulator (the
    // jitter Rng is re-seeded per shard exactly as the sequential loop
    // re-seeded it per supply), results land in ascending-supply order.
    result.points = util::parallel_map(
        util::global_pool(), supplies.size(), [&](std::size_t s) {
          const double v = supplies[s];
          bus::BusSimulator sim = system.make_simulator(environment);
          sim.set_engine_mode(engine);
          if (timing_jitter_sigma > 0.0) sim.set_timing_jitter(timing_jitter_sigma);
          sim.set_supply(v);
          for (const auto& t : traces) sim.run(t.words);

          SweepPoint p;
          p.supply = v;
          p.error_rate = sim.totals().error_rate();
          p.bus_energy = sim.totals().bus_energy;
          p.total_energy = sim.totals().total_energy();
          return p;
        });
  }

  result.baseline_bus_energy = result.points.back().bus_energy;  // nominal supply
  for (auto& p : result.points) {
    p.norm_bus_energy = p.bus_energy / result.baseline_bus_energy;
    p.norm_total_energy = p.total_energy / result.baseline_bus_energy;
  }
  return result;
}

std::vector<TargetGainPoint> gains_for_targets(const StaticSweepResult& sweep,
                                               const std::vector<double>& targets) {
  if (sweep.points.empty()) throw std::invalid_argument("gains_for_targets: empty sweep");
  // One shard per target; cheap compared to the sweep itself, but keeps
  // every stage of the Fig. 5 pipeline on the executor.
  return util::parallel_map(util::global_pool(), targets.size(), [&](std::size_t t) {
    const double target = targets[t];
    TargetGainPoint g;
    g.target_error_rate = target;
    // Lowest supply whose error rate stays within the target (0 -> exact 0).
    const SweepPoint* chosen = &sweep.points.back();
    for (const auto& p : sweep.points) {
      // razorlint: allow(float-eq): a 0 target means literally error-free —
      // both sides are exact-by-construction (counts divided by counts).
      const bool ok = target == 0.0 ? p.error_rate == 0.0 : p.error_rate <= target;
      if (ok) {
        chosen = &p;
        break;
      }
    }
    g.chosen_supply = chosen->supply;
    g.achieved_error_rate = chosen->error_rate;
    g.energy_gain = 1.0 - chosen->total_energy / sweep.baseline_bus_energy;
    return g;
  });
}

VoltageDistribution oracle_voltage_distribution(const DvsBusSystem& system,
                                                const tech::PvtCorner& environment,
                                                const trace::Trace& trace,
                                                double target_error_rate,
                                                std::uint64_t window_cycles) {
  dvs::OracleSelector oracle(system.design(), system.table(), environment);
  dvs::OracleConfig config;
  config.window_cycles = window_cycles;
  config.target_error_rate = target_error_rate;
  config.vmin = system.shadow_floor(environment);
  const dvs::OracleResult r = oracle.select(trace, config);

  VoltageDistribution out;
  out.benchmark = trace.name;
  out.target_error_rate = target_error_rate;
  out.time_at_voltage = r.time_at_voltage.fractions();
  out.achieved_error_rate = r.achieved_error_rate;
  return out;
}

// Shared body of run_consecutive: `baselines`, when non-null, supplies the
// per-trace nominal-supply reference energy (baselines[i] for traces[i])
// instead of the run_reference pass per trace — the batched PVT driver
// precomputes all samples' baselines in one multi-point pass.
static ConsecutiveRunReport run_consecutive_impl(const DvsBusSystem& system,
                                                 const tech::PvtCorner& environment,
                                                 const std::vector<trace::Trace>& traces,
                                                 const DvsRunConfig& config,
                                                 const double* baselines) {
  for (const auto& t : traces) check_trace_width(system, t);
  const double vnom = system.design().node.vdd_nominal;
  const double floor = system.dvs_floor(environment.process);
  const double start = config.start_supply > 0.0 ? config.start_supply : vnom;

  bus::BusSimulator sim = system.make_simulator(environment);
  sim.set_engine_mode(config.engine);
  if (config.timing_jitter_sigma > 0.0) sim.set_timing_jitter(config.timing_jitter_sigma);
  dvs::VoltageRegulator regulator(start, floor, vnom, config.regulator_delay_cycles);
  dvs::ThresholdController controller(config.controller);
  sim.set_supply(regulator.voltage());

  ConsecutiveRunReport report;
  std::uint64_t cycle = 0;

  for (std::size_t trace_index = 0; trace_index < traces.size(); ++trace_index) {
    const auto& trace = traces[trace_index];
    const bus::RunningTotals before = sim.totals();
    double supply_sum = 0.0;

    // Window-batched closed loop: each span runs at one regulator voltage
    // and stays within one controller window, so the whole span goes
    // through the batched engine and only the span's error COUNT feeds the
    // controller — cycle-for-cycle equivalent to stepping one word at a
    // time through observe_cycle()/advance().
    std::size_t i = 0;
    const std::size_t n = trace.words.size();
    while (i < n) {
      sim.set_supply(regulator.advance(cycle));
      const std::uint64_t seg =
          next_segment(static_cast<std::uint64_t>(n - i),
                       controller.cycles_remaining_in_window(),
                       regulator.next_change_cycle(), cycle);
      const bus::RunningTotals d = sim.run(trace.words.data() + i, seg);
      supply_sum += sim.supply() * static_cast<double>(seg);
      i += static_cast<std::size_t>(seg);
      cycle += seg;

      const dvs::VoltageDecision decision = controller.observe_segment(seg, d.errors);
      // The decision belongs to the last cycle of the span (cycle - 1),
      // exactly when the per-cycle loop would have issued it.
      if (decision == dvs::VoltageDecision::step_down)
        regulator.request_change(-config.controller.voltage_step, cycle - 1);
      else if (decision == dvs::VoltageDecision::step_up)
        regulator.request_change(+config.controller.voltage_step, cycle - 1);

      if (config.record_series && controller.cycles_remaining_in_window() ==
                                      config.controller.window_cycles &&
          controller.windows_completed() > 0)
        report.series.push_back(
            {cycle, sim.supply(), controller.last_window_error_rate()});
    }

    DvsRunReport r;
    r.totals.cycles = sim.totals().cycles - before.cycles;
    r.totals.errors = sim.totals().errors - before.errors;
    r.totals.shadow_failures = sim.totals().shadow_failures - before.shadow_failures;
    r.totals.bus_energy = sim.totals().bus_energy - before.bus_energy;
    r.totals.overhead_energy = sim.totals().overhead_energy - before.overhead_energy;
    r.floor_supply = floor;
    r.average_supply =
        trace.words.empty() ? sim.supply()
                            : supply_sum / static_cast<double>(trace.words.size());
    r.baseline_bus_energy =
        baselines != nullptr
            ? baselines[trace_index]
            : bus::BusSimulator::run_reference(system.design(), system.table(),
                                               environment, trace.words)
                  .bus_energy;
    report.per_trace.push_back(std::move(r));
  }
  return report;
}

ConsecutiveRunReport run_consecutive(const DvsBusSystem& system,
                                     const tech::PvtCorner& environment,
                                     const std::vector<trace::Trace>& traces,
                                     const DvsRunConfig& config) {
  return run_consecutive_impl(system, environment, traces, config, nullptr);
}

DvsRunReport run_closed_loop(const DvsBusSystem& system,
                             const tech::PvtCorner& environment,
                             const trace::Trace& trace, const DvsRunConfig& config) {
  ConsecutiveRunReport r = run_consecutive(system, environment, {trace}, config);
  DvsRunReport out = std::move(r.per_trace.front());
  out.series = std::move(r.series);
  return out;
}

// Closed loop with a precomputed nominal baseline (the batched PVT path).
static DvsRunReport run_closed_loop_with_baseline(const DvsBusSystem& system,
                                                  const tech::PvtCorner& environment,
                                                  const trace::Trace& trace,
                                                  const DvsRunConfig& config,
                                                  double baseline_bus_energy) {
  ConsecutiveRunReport r = run_consecutive_impl(system, environment, {trace}, config,
                                                &baseline_bus_energy);
  DvsRunReport out = std::move(r.per_trace.front());
  out.series = std::move(r.series);
  return out;
}

DvsRunReport run_closed_loop_proportional(const DvsBusSystem& system,
                                          const tech::PvtCorner& environment,
                                          const trace::Trace& trace,
                                          const ProportionalRunConfig& config) {
  check_trace_width(system, trace);
  const double vnom = system.design().node.vdd_nominal;
  const double floor = system.dvs_floor(environment.process);
  const double start = config.start_supply > 0.0 ? config.start_supply : vnom;

  bus::BusSimulator sim = system.make_simulator(environment);
  sim.set_engine_mode(config.engine);
  if (config.timing_jitter_sigma > 0.0) sim.set_timing_jitter(config.timing_jitter_sigma);
  dvs::VoltageRegulator regulator(start, floor, vnom, config.regulator_delay_cycles);
  dvs::ProportionalController controller(config.controller);
  sim.set_supply(regulator.voltage());

  double supply_sum = 0.0;
  std::uint64_t cycle = 0;
  std::size_t i = 0;
  const std::size_t n = trace.words.size();
  while (i < n) {
    sim.set_supply(regulator.advance(cycle));
    const std::uint64_t seg = next_segment(static_cast<std::uint64_t>(n - i),
                                           controller.cycles_remaining_in_window(),
                                           regulator.next_change_cycle(), cycle);
    const bus::RunningTotals d = sim.run(trace.words.data() + i, seg);
    supply_sum += sim.supply() * static_cast<double>(seg);
    i += static_cast<std::size_t>(seg);
    cycle += seg;

    const double delta = controller.observe_segment(seg, d.errors);
    // razorlint: allow(float-eq): the controller returns literal 0.0 for
    // "no step"; any nonzero delta, however tiny, is a real request.
    if (delta != 0.0) regulator.request_change(delta, cycle - 1);
  }

  DvsRunReport report;
  report.totals = sim.totals();
  report.floor_supply = floor;
  report.average_supply =
      trace.words.empty() ? sim.supply() : supply_sum / static_cast<double>(cycle);
  report.baseline_bus_energy =
      bus::BusSimulator::run_reference(system.design(), system.table(), environment,
                                       trace.words)
          .bus_energy;
  return report;
}

DvsRunReport run_fixed_vs(const DvsBusSystem& system, const tech::PvtCorner& environment,
                          const trace::Trace& trace, bus::EngineMode engine,
                          double timing_jitter_sigma) {
  check_trace_width(system, trace);
  const double supply = system.fixed_vs_supply(environment.process);

  // Conventional receiver: no double-sampling overhead at all.
  razor::RecoveryCostModel no_overhead;
  no_overhead.flop_clock_energy = 0.0;
  no_overhead.detection_energy_per_cycle = 0.0;

  bus::BusSimulator sim(system.design(), system.table(), environment, no_overhead);
  sim.set_engine_mode(engine);
  if (timing_jitter_sigma > 0.0) sim.set_timing_jitter(timing_jitter_sigma);
  sim.set_supply(supply);
  sim.run(trace.words);

  DvsRunReport report;
  report.totals = sim.totals();
  report.floor_supply = supply;
  report.average_supply = supply;
  report.baseline_bus_energy =
      bus::BusSimulator::run_reference(system.design(), system.table(), environment,
                                       trace.words)
          .bus_energy;
  return report;
}

std::vector<DvsRunReport> run_closed_loop_suite(const DvsBusSystem& system,
                                                const tech::PvtCorner& environment,
                                                const std::vector<trace::Trace>& traces,
                                                const DvsRunConfig& config) {
  return util::parallel_map(util::global_pool(), traces.size(), [&](std::size_t t) {
    return run_closed_loop(system, environment, traces[t], config);
  });
}

std::vector<DvsRunReport> run_fixed_vs_suite(const DvsBusSystem& system,
                                             const tech::PvtCorner& environment,
                                             const std::vector<trace::Trace>& traces,
                                             bus::EngineMode engine,
                                             double timing_jitter_sigma) {
  return util::parallel_map(util::global_pool(), traces.size(), [&](std::size_t t) {
    return run_fixed_vs(system, environment, traces[t], engine, timing_jitter_sigma);
  });
}

PvtSampleResult pvt_sample_gains(const DvsBusSystem& system, const trace::Trace& trace,
                                 const PvtSampleConfig& config) {
  const auto n = static_cast<std::size_t>(std::max(config.samples, 0));
  PvtSampleResult out;
  if (config.run.engine == bus::EngineMode::simd && n > 0) {
    // Batched baselines: the closed loops themselves diverge per sample
    // (the controller feeds back), but every sample's NOMINAL reference
    // pass — one run_reference per corner, identical trace — is a pure
    // multi-point batch: one pass over the trace for all N corners.
    check_trace_width(system, trace);
    std::vector<tech::PvtCorner> corners(n);
    for (std::size_t s = 0; s < n; ++s) {
      Rng rng(util::shard_seed(config.seed, s));
      corners[s] = draw_pvt_corner(rng);
    }
    const double vnom = system.design().node.vdd_nominal;
    std::vector<bus::OperatingPoint> points(n);
    for (std::size_t s = 0; s < n; ++s) points[s] = {vnom, corners[s]};
    const std::vector<bus::RunningTotals> baselines =
        bus::multi_point_run(system.design(), system.table(), points, trace.words);
    out.samples = util::parallel_map(util::global_pool(), n, [&](std::size_t s) {
      PvtSample sample;
      sample.corner = corners[s];
      sample.report = run_closed_loop_with_baseline(system, sample.corner, trace,
                                                    config.run,
                                                    baselines[s].bus_energy);
      return sample;
    });
  } else {
    out.samples = util::parallel_map(util::global_pool(), n, [&](std::size_t s) {
      // Private Rng stream per sample: the drawn population depends only on
      // (seed, sample index), never on the shard-to-thread assignment.
      Rng rng(util::shard_seed(config.seed, s));
      PvtSample sample;
      sample.corner = draw_pvt_corner(rng);
      sample.report = run_closed_loop(system, sample.corner, trace, config.run);
      return sample;
    });
  }

  // Per-shard singleton stats merged in shard order: the aggregate is the
  // same double sequence no matter how many threads ran the samples.
  for (const auto& sample : out.samples) {
    RunningStats gain, err;
    gain.add(sample.report.energy_gain());
    err.add(sample.report.error_rate());
    out.gain_stats.merge(gain);
    out.err_stats.merge(err);
  }
  return out;
}

// --------------------------------------------- streamed drivers (§12)

StaticSweepResult static_voltage_sweep_streamed(const DvsBusSystem& system,
                                                const tech::PvtCorner& environment,
                                                const trace::TraceSource& source,
                                                double timing_jitter_sigma,
                                                bus::EngineMode engine,
                                                const StreamConfig& stream,
                                                StreamStats* stats) {
  check_source_width(system, source);
  StaticSweepResult result;
  result.floor_supply = system.shadow_floor(environment);
  const double vnom = system.design().node.vdd_nominal;
  const double step = 0.020;

  std::vector<double> supplies;
  for (double v = vnom; v > result.floor_supply - 1e-9; v -= step) supplies.push_back(v);
  std::sort(supplies.begin(), supplies.end());

  if (engine == bus::EngineMode::simd) {
    // Batched: N supplies per stream drain instead of one (chunked over
    // the pool), so the stream is pulled ~threads times, not per supply.
    std::vector<StreamStats> shard_stats;
    result.points = sweep_points_batched_streamed(
        system, environment, supplies, timing_jitter_sigma, source, stream,
        shard_stats);
    if (stats != nullptr)
      for (const auto& shard : shard_stats) stats->merge(shard);
  } else {
    // One shard per supply, exactly like the materialized sweep; each shard
    // drains its own clone of the stream, so total trace memory is
    // block_cycles x live shards instead of the whole campaign.
    std::vector<StreamStats> shard_stats(supplies.size());
    result.points = util::parallel_map(
        util::global_pool(), supplies.size(), [&](std::size_t s) {
          const double v = supplies[s];
          bus::BusSimulator sim = system.make_simulator(environment);
          sim.set_engine_mode(engine);
          if (timing_jitter_sigma > 0.0) sim.set_timing_jitter(timing_jitter_sigma);
          sim.set_supply(v);
          StreamFeeder feeder(source, stream.block_cycles);
          feeder.feed(sim, nullptr, std::numeric_limits<std::uint64_t>::max());
          feeder.account(&shard_stats[s], stream.block_cycles);

          SweepPoint p;
          p.supply = v;
          p.error_rate = sim.totals().error_rate();
          p.bus_energy = sim.totals().bus_energy;
          p.total_energy = sim.totals().total_energy();
          return p;
        });
    if (stats != nullptr)
      for (const auto& shard : shard_stats) stats->merge(shard);
  }

  result.baseline_bus_energy = result.points.back().bus_energy;  // nominal supply
  for (auto& p : result.points) {
    p.norm_bus_energy = p.bus_energy / result.baseline_bus_energy;
    p.norm_total_energy = p.total_energy / result.baseline_bus_energy;
  }
  return result;
}

// Shared body of run_consecutive_streamed: when `baselines` is non-null it
// holds one precomputed nominal reference energy per source (from a batched
// MultiPointEngine pass) and the lockstep baseline simulator is skipped.
static ConsecutiveRunReport run_consecutive_streamed_impl(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    const DvsRunConfig& config, const StreamConfig& stream, StreamStats* stats,
    const double* baselines) {
  for (const auto& source : sources) check_source_width(system, *source);
  const double vnom = system.design().node.vdd_nominal;
  const double floor = system.dvs_floor(environment.process);
  const double start = config.start_supply > 0.0 ? config.start_supply : vnom;

  bus::BusSimulator sim = system.make_simulator(environment);
  sim.set_engine_mode(config.engine);
  if (config.timing_jitter_sigma > 0.0) sim.set_timing_jitter(config.timing_jitter_sigma);
  dvs::VoltageRegulator regulator(start, floor, vnom, config.regulator_delay_cycles);
  dvs::ThresholdController controller(config.controller);
  sim.set_supply(regulator.voltage());

  ConsecutiveRunReport report;
  std::uint64_t cycle = 0;

  for (std::size_t source_index = 0; source_index < sources.size(); ++source_index) {
    const auto& source = sources[source_index];
    const bus::RunningTotals before = sim.totals();
    double supply_sum = 0.0;
    std::uint64_t source_cycles = 0;
    bus::BusSimulator baseline = make_baseline_sim(system, environment);
    bus::BusSimulator* baseline_sim = baselines == nullptr ? &baseline : nullptr;
    StreamFeeder feeder(*source, stream.block_cycles);

    // The materialized driver's window-batched loop, with one change: a
    // logical segment is planned from the controller window and the
    // pending regulator change alone (the end of the trace is discovered,
    // not known), and the feeder serves it across block refills. Control
    // decisions therefore land on identical cycles.
    while (feeder.has_more()) {
      sim.set_supply(regulator.advance(cycle));
      std::uint64_t planned = controller.cycles_remaining_in_window();
      const std::uint64_t change = regulator.next_change_cycle();
      if (change != dvs::VoltageRegulator::kNoPendingChange && change > cycle)
        planned = std::min(planned, change - cycle);
      const StreamFeeder::FeedResult fed = feeder.feed(sim, baseline_sim, planned);
      supply_sum += sim.supply() * static_cast<double>(fed.cycles);
      cycle += fed.cycles;
      source_cycles += fed.cycles;

      const dvs::VoltageDecision decision =
          controller.observe_segment(fed.cycles, fed.errors);
      if (decision == dvs::VoltageDecision::step_down)
        regulator.request_change(-config.controller.voltage_step, cycle - 1);
      else if (decision == dvs::VoltageDecision::step_up)
        regulator.request_change(+config.controller.voltage_step, cycle - 1);

      if (config.record_series && controller.cycles_remaining_in_window() ==
                                      config.controller.window_cycles &&
          controller.windows_completed() > 0)
        report.series.push_back(
            {cycle, sim.supply(), controller.last_window_error_rate()});
    }
    feeder.account(stats, stream.block_cycles);

    DvsRunReport r;
    r.totals.cycles = sim.totals().cycles - before.cycles;
    r.totals.errors = sim.totals().errors - before.errors;
    r.totals.shadow_failures = sim.totals().shadow_failures - before.shadow_failures;
    r.totals.bus_energy = sim.totals().bus_energy - before.bus_energy;
    r.totals.overhead_energy = sim.totals().overhead_energy - before.overhead_energy;
    r.floor_supply = floor;
    r.average_supply = source_cycles == 0
                           ? sim.supply()
                           : supply_sum / static_cast<double>(source_cycles);
    r.baseline_bus_energy = baselines != nullptr ? baselines[source_index]
                                                 : baseline.totals().bus_energy;
    report.per_trace.push_back(std::move(r));
  }
  return report;
}

ConsecutiveRunReport run_consecutive_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    const DvsRunConfig& config, const StreamConfig& stream, StreamStats* stats) {
  return run_consecutive_streamed_impl(system, environment, sources, config, stream,
                                       stats, nullptr);
}

DvsRunReport run_closed_loop_streamed(const DvsBusSystem& system,
                                      const tech::PvtCorner& environment,
                                      const trace::TraceSource& source,
                                      const DvsRunConfig& config,
                                      const StreamConfig& stream, StreamStats* stats) {
  std::vector<std::unique_ptr<trace::TraceSource>> one;
  one.push_back(source.clone());
  ConsecutiveRunReport r =
      run_consecutive_streamed(system, environment, one, config, stream, stats);
  DvsRunReport out = std::move(r.per_trace.front());
  out.series = std::move(r.series);
  return out;
}

// Closed loop over a stream with the nominal reference energy supplied by a
// batched multi-point pass (see pvt_sample_gains_streamed).
static DvsRunReport run_closed_loop_streamed_with_baseline(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const trace::TraceSource& source, const DvsRunConfig& config,
    const StreamConfig& stream, StreamStats* stats, double baseline_bus_energy) {
  std::vector<std::unique_ptr<trace::TraceSource>> one;
  one.push_back(source.clone());
  ConsecutiveRunReport r = run_consecutive_streamed_impl(
      system, environment, one, config, stream, stats, &baseline_bus_energy);
  DvsRunReport out = std::move(r.per_trace.front());
  out.series = std::move(r.series);
  return out;
}

DvsRunReport run_closed_loop_proportional_streamed(const DvsBusSystem& system,
                                                   const tech::PvtCorner& environment,
                                                   const trace::TraceSource& source,
                                                   const ProportionalRunConfig& config,
                                                   const StreamConfig& stream,
                                                   StreamStats* stats) {
  check_source_width(system, source);
  const double vnom = system.design().node.vdd_nominal;
  const double floor = system.dvs_floor(environment.process);
  const double start = config.start_supply > 0.0 ? config.start_supply : vnom;

  bus::BusSimulator sim = system.make_simulator(environment);
  sim.set_engine_mode(config.engine);
  if (config.timing_jitter_sigma > 0.0) sim.set_timing_jitter(config.timing_jitter_sigma);
  dvs::VoltageRegulator regulator(start, floor, vnom, config.regulator_delay_cycles);
  dvs::ProportionalController controller(config.controller);
  sim.set_supply(regulator.voltage());

  bus::BusSimulator baseline = make_baseline_sim(system, environment);
  StreamFeeder feeder(source, stream.block_cycles);
  double supply_sum = 0.0;
  std::uint64_t cycle = 0;
  while (feeder.has_more()) {
    sim.set_supply(regulator.advance(cycle));
    std::uint64_t planned = controller.cycles_remaining_in_window();
    const std::uint64_t change = regulator.next_change_cycle();
    if (change != dvs::VoltageRegulator::kNoPendingChange && change > cycle)
      planned = std::min(planned, change - cycle);
    const StreamFeeder::FeedResult fed = feeder.feed(sim, &baseline, planned);
    supply_sum += sim.supply() * static_cast<double>(fed.cycles);
    cycle += fed.cycles;

    const double delta = controller.observe_segment(fed.cycles, fed.errors);
    // razorlint: allow(float-eq): the controller returns literal 0.0 for
    // "no step"; any nonzero delta, however tiny, is a real request.
    if (delta != 0.0) regulator.request_change(delta, cycle - 1);
  }
  feeder.account(stats, stream.block_cycles);

  DvsRunReport report;
  report.totals = sim.totals();
  report.floor_supply = floor;
  report.average_supply =
      cycle == 0 ? sim.supply() : supply_sum / static_cast<double>(cycle);
  report.baseline_bus_energy = baseline.totals().bus_energy;
  return report;
}

DvsRunReport run_fixed_vs_streamed(const DvsBusSystem& system,
                                   const tech::PvtCorner& environment,
                                   const trace::TraceSource& source,
                                   bus::EngineMode engine, double timing_jitter_sigma,
                                   const StreamConfig& stream, StreamStats* stats) {
  check_source_width(system, source);
  const double supply = system.fixed_vs_supply(environment.process);

  // Conventional receiver: no double-sampling overhead at all.
  razor::RecoveryCostModel no_overhead;
  no_overhead.flop_clock_energy = 0.0;
  no_overhead.detection_energy_per_cycle = 0.0;

  bus::BusSimulator sim(system.design(), system.table(), environment, no_overhead);
  sim.set_engine_mode(engine);
  if (timing_jitter_sigma > 0.0) sim.set_timing_jitter(timing_jitter_sigma);
  sim.set_supply(supply);

  bus::BusSimulator baseline = make_baseline_sim(system, environment);
  StreamFeeder feeder(source, stream.block_cycles);
  feeder.feed(sim, &baseline, std::numeric_limits<std::uint64_t>::max());
  feeder.account(stats, stream.block_cycles);

  DvsRunReport report;
  report.totals = sim.totals();
  report.floor_supply = supply;
  report.average_supply = supply;
  report.baseline_bus_energy = baseline.totals().bus_energy;
  return report;
}

std::vector<DvsRunReport> run_closed_loop_suite_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    const DvsRunConfig& config, const StreamConfig& stream, StreamStats* stats) {
  std::vector<StreamStats> shard_stats(sources.size());
  auto reports =
      util::parallel_map(util::global_pool(), sources.size(), [&](std::size_t t) {
        return run_closed_loop_streamed(system, environment, *sources[t], config,
                                        stream, &shard_stats[t]);
      });
  if (stats != nullptr)
    for (const auto& shard : shard_stats) stats->merge(shard);
  return reports;
}

std::vector<DvsRunReport> run_fixed_vs_suite_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    bus::EngineMode engine, double timing_jitter_sigma, const StreamConfig& stream,
    StreamStats* stats) {
  std::vector<StreamStats> shard_stats(sources.size());
  auto reports =
      util::parallel_map(util::global_pool(), sources.size(), [&](std::size_t t) {
        return run_fixed_vs_streamed(system, environment, *sources[t], engine,
                                     timing_jitter_sigma, stream, &shard_stats[t]);
      });
  if (stats != nullptr)
    for (const auto& shard : shard_stats) stats->merge(shard);
  return reports;
}

PvtSampleResult pvt_sample_gains_streamed(const DvsBusSystem& system,
                                          const trace::TraceSource& source,
                                          const PvtSampleConfig& config,
                                          const StreamConfig& stream,
                                          StreamStats* stats) {
  const auto n = static_cast<std::size_t>(std::max(config.samples, 0));
  std::vector<StreamStats> shard_stats(n);
  PvtSampleResult out;
  if (config.run.engine == bus::EngineMode::simd && n > 0) {
    // Same batching as the materialized driver: all N per-corner nominal
    // baselines in one streamed pass, then the (divergent) closed loops.
    check_source_width(system, source);
    if (stream.block_cycles == 0)
      throw std::invalid_argument("stream: block_cycles must be > 0");
    std::vector<tech::PvtCorner> corners(n);
    for (std::size_t s = 0; s < n; ++s) {
      Rng rng(util::shard_seed(config.seed, s));
      corners[s] = draw_pvt_corner(rng);
    }
    const double vnom = system.design().node.vdd_nominal;
    std::vector<bus::OperatingPoint> points(n);
    for (std::size_t s = 0; s < n; ++s) points[s] = {vnom, corners[s]};

    bus::MultiPointEngine baseline_engine(system.design(), system.table(), points);
    StreamStats baseline_stats;
    baseline_stats.block_cycles = stream.block_cycles;
    {
      const auto clone = source.clone();
      std::vector<BusWord> buffer(stream.block_cycles);
      for (;;) {
        const std::size_t filled = clone->next_block(buffer.data(), buffer.size());
        if (filled == 0) break;
        baseline_engine.run(buffer.data(), filled);
        ++baseline_stats.blocks;
        baseline_stats.cycles += filled;
      }
      baseline_stats.peak_buffer_words =
          std::max(baseline_stats.peak_buffer_words, buffer.size());
    }

    out.samples = util::parallel_map(util::global_pool(), n, [&](std::size_t s) {
      PvtSample sample;
      sample.corner = corners[s];
      sample.report = run_closed_loop_streamed_with_baseline(
          system, sample.corner, source, config.run, stream, &shard_stats[s],
          baseline_engine.totals(s).bus_energy);
      return sample;
    });
    if (stats != nullptr) stats->merge(baseline_stats);
  } else {
    out.samples = util::parallel_map(util::global_pool(), n, [&](std::size_t s) {
      // Identical per-shard Rng stream to the materialized driver: the drawn
      // population depends only on (seed, sample index).
      Rng rng(util::shard_seed(config.seed, s));
      PvtSample sample;
      sample.corner = draw_pvt_corner(rng);
      sample.report = run_closed_loop_streamed(system, sample.corner, source,
                                               config.run, stream, &shard_stats[s]);
      return sample;
    });
  }
  if (stats != nullptr)
    for (const auto& shard : shard_stats) stats->merge(shard);

  for (const auto& sample : out.samples) {
    RunningStats gain, err;
    gain.add(sample.report.energy_gain());
    err.add(sample.report.error_rate());
    out.gain_stats.merge(gain);
    out.err_stats.merge(err);
  }
  return out;
}

}  // namespace razorbus::core

// Content-addressed identity of a campaign job (docs/campaignd.md).
//
// A campaign job is a pure function of its resolved spec, the bytes of any
// trace file it reads, and the simulation code version: results are
// bit-identical across thread counts, hosts and reruns (DESIGN.md §9), so
// two jobs with equal identity produce byte-identical BENCH reports. The
// job hash therefore keys the campaignd result cache — a completed job
// with the same hash is replayed from the cache verbatim instead of
// simulated — and the CI `campaign-cache` leg keys its cache restore on
// the scheme version below.
#pragma once

#include <cstdint>
#include <string>

#include "core/scenario_spec.hpp"

namespace razorbus::core {

// Version of the HASH SCHEME itself: bump when the identity string's
// layout changes, or when report bytes can change for a reason the inputs
// below cannot see (a bench harness reformats its report, a controller
// default moves). Simulator-value changes are already covered by
// lut::kSimulatorVersion, which is mixed in. CI keys the campaign result
// cache as `campaign-cache-v<N>` on this constant — keep them in sync
// (.github/workflows/ci.yml).
constexpr std::uint32_t kJobHashSchemeVersion = 1;

// The canonical identity string: newline-separated scheme version,
// simulator version, job name, the compact canonical JSON of the resolved
// spec (field order is fixed by ScenarioSpec::to_json), and — for file
// traces — a content hash of the trace file bytes (an unreadable file
// contributes a marker, so hashing never fails before the job itself
// would). Exposed for tests and for `campaignd hash` debugging output.
std::string job_identity(const ScenarioJob& job);

// FNV-1a of job_identity(): the result-cache key. Any field change in the
// resolved spec — cycles, seed, width, controller tuning, engine, stream
// mode, lut_tolerance, ... — yields a new hash.
std::uint64_t job_content_hash(const ScenarioJob& job);

// 16-digit lowercase hex of job_content_hash(); used for cache entry and
// status file names.
std::string job_hash_hex(const ScenarioJob& job);

}  // namespace razorbus::core

#include "core/system.hpp"

#include <cmath>
#include <stdexcept>

namespace razorbus::core {

DvsBusSystem::DvsBusSystem(interconnect::BusDesign design, const SystemOptions& options)
    : design_(std::move(design)), driver_(design_.node) {
  design_.validate();
  if (design_.repeater_size <= 0.0)
    interconnect::size_repeaters(design_, driver_, options.sizing_corner);

  if (options.use_cache)
    table_ = lut::build_or_load(design_, driver_, options.lut_config, options.progress);
  else
    table_ = lut::DelayEnergyTable::build(design_, driver_, options.lut_config,
                                          options.progress);
}

bus::BusSimulator DvsBusSystem::make_simulator(const tech::PvtCorner& environment) const {
  return bus::BusSimulator(design_, table_, environment);
}

double DvsBusSystem::dvs_floor(tech::ProcessCorner process) const {
  return dvs::dvs_floor_voltage(design_, table_, process);
}

double DvsBusSystem::fixed_vs_supply(tech::ProcessCorner process) const {
  return dvs::fixed_vs_voltage(design_, table_, process);
}

double DvsBusSystem::shadow_floor(const tech::PvtCorner& environment) const {
  const int worst = lut::PatternClass::encode(
      lut::VictimActivity::rise, lut::NeighborActivity::fall,
      lut::NeighborActivity::fall);
  const auto& grid = table_.grid();
  const double limit = design_.shadow_capture_limit();
  const double step = 0.020;
  double best = design_.node.vdd_nominal;
  bool found = false;
  for (double v = design_.node.vdd_nominal; v > grid.vmin() - 1e-9; v -= step) {
    const double v_eff = environment.effective_supply(v);
    if (v_eff < grid.vmin() - 1e-9) break;
    const double d = table_.delay(worst, environment.process, environment.temp_c, v_eff);
    if (std::isnan(d) || std::isinf(d) || d > limit) break;
    best = v;
    found = true;
  }
  if (!found) throw std::runtime_error("shadow_floor: bus unsafe even at nominal supply");
  return best;
}

double DvsBusSystem::nominal_worst_delay(const tech::PvtCorner& environment) const {
  const int worst = lut::PatternClass::encode(
      lut::VictimActivity::rise, lut::NeighborActivity::fall,
      lut::NeighborActivity::fall);
  return table_.delay(worst, environment.process, environment.temp_c,
                      environment.effective_supply(design_.node.vdd_nominal));
}

}  // namespace razorbus::core

// DvsBusSystem: the library's primary entry point.
//
// Bundles a sized bus design, its driver model and its characterised
// delay/energy tables, and exposes the experiments of the paper:
//   * static voltage sweeps (Fig. 4),
//   * minimum-voltage search for a target error rate (Fig. 5 / Fig. 10),
//   * oracle windowed voltage selection (Fig. 6),
//   * closed-loop DVS runs with the threshold controller and a ramping
//     regulator (Table 1 / Fig. 8), and
//   * the fixed-VS baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bus/simulator.hpp"
#include "dvs/controller.hpp"
#include "dvs/fixed_vs.hpp"
#include "dvs/oracle.hpp"
#include "interconnect/bus_design.hpp"
#include "interconnect/rc_builder.hpp"
#include "lut/cache.hpp"
#include "lut/table.hpp"
#include "tech/corner.hpp"
#include "tech/device.hpp"
#include "trace/trace.hpp"

namespace razorbus::core {

struct SystemOptions {
  lut::LutConfig lut_config{};
  // Corner the repeaters are sized at (the paper's worst case).
  tech::PvtCorner sizing_corner = tech::worst_case_corner();
  // Use the on-disk characterization cache (recommended).
  bool use_cache = true;
  // Progress callback for characterization (done, total).
  std::function<void(int, int)> progress{};
};

class DvsBusSystem {
 public:
  // Sizes the repeaters of `design` (if not already sized) and builds or
  // loads the delay/energy tables. This is the expensive constructor — a
  // cache miss costs thousands of transient circuit simulations.
  explicit DvsBusSystem(interconnect::BusDesign design,
                        const SystemOptions& options = {});

  const interconnect::BusDesign& design() const { return design_; }
  const lut::DelayEnergyTable& table() const { return table_; }
  const tech::DriverModel& driver() const { return driver_; }

  // Fresh cycle simulator for an environment.
  bus::BusSimulator make_simulator(const tech::PvtCorner& environment) const;

  // Regulator floor for a process corner (shadow-safe under conservative
  // worst-case temperature and IR drop).
  double dvs_floor(tech::ProcessCorner process) const;
  // Fixed-VS baseline voltage for a process corner.
  double fixed_vs_supply(tech::ProcessCorner process) const;

  // Lowest supply at which the worst-case pattern still reaches the shadow
  // latch for the SPECIFIC environment (used by static studies, Fig. 5).
  double shadow_floor(const tech::PvtCorner& environment) const;

  // Non-DVS reference: worst-case in-to-out delay at the nominal supply
  // for an environment (the Fig. 5 X axis).
  double nominal_worst_delay(const tech::PvtCorner& environment) const;

 private:
  interconnect::BusDesign design_;
  tech::DriverModel driver_;
  lut::DelayEnergyTable table_;
};

}  // namespace razorbus::core

// Bench-regression gate (DESIGN.md §11).
//
// CI uploads BENCH_*.json reports on every main build. The gate compares
// the throughput metrics of the current run against the previous main
// artifact and fails the job when any of them dropped by more than the
// threshold. Throughput metrics are, by convention, the numeric metrics
// whose key ends in "_cps" (cycles per second) — wall-clock fields,
// thread counts and experiment results are never compared. Reports are
// matched structurally, so both a single scenario report and the
// aggregated BENCH_campaign.json (reports nested one per scenario) work.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace razorbus::core {

struct BenchGateFinding {
  std::string path;  // slash-joined key path, e.g. "metrics/active_bit_parallel_cps"
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;        // current / baseline
  bool regression = false;   // ratio < 1 - threshold
};

struct BenchGateResult {
  double threshold = 0.0;
  std::vector<BenchGateFinding> compared;  // metrics present in both reports
  std::vector<std::string> missing;        // in the baseline only (scenario removed?)
  std::vector<std::string> added;          // in the current run only (new scenario)

  bool ok() const {
    for (const auto& finding : compared)
      if (finding.regression) return false;
    return true;
  }
  std::size_t regressions() const {
    std::size_t n = 0;
    for (const auto& finding : compared) n += finding.regression ? 1 : 0;
    return n;
  }
};

// Compares every "_cps" metric of `current` against `baseline`; a metric
// counts as regressed when current < baseline * (1 - threshold). Metrics
// only present on one side are reported but never fail the gate (scenarios
// come and go); improvements never fail.
BenchGateResult compare_bench_reports(const Json& baseline, const Json& current,
                                      double threshold = 0.20);

}  // namespace razorbus::core

// Bench-regression gate (DESIGN.md §11).
//
// CI uploads BENCH_*.json reports on every main build. The gate compares
// the gated metrics of the current run against the previous main artifact
// and fails the job when any of them regressed by more than the
// threshold. Two key conventions are gated — the numeric metrics whose
// key ends in "_cps" (throughput: cycles or sims per second; a DROP is a
// regression) and those ending in "_sims" (cost: transient-run counts of
// the characterization build; a RISE is a regression) — wall-clock
// fields, thread counts and experiment results are never compared.
// Reports are matched structurally, so both a single scenario report and
// the aggregated BENCH_campaign.json (reports nested one per scenario)
// work.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace razorbus::core {

struct BenchGateFinding {
  std::string path;  // slash-joined key path, e.g. "metrics/active_bit_parallel_cps"
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;        // current / baseline
  bool cost = false;         // "_sims" key: lower is better
  bool regression = false;   // throughput: ratio < 1 - threshold; cost: > 1 + threshold
};

struct BenchGateResult {
  double threshold = 0.0;
  std::vector<BenchGateFinding> compared;  // metrics present in both reports
  std::vector<std::string> missing;        // in the baseline only (scenario removed?)
  std::vector<std::string> added;          // in the current run only (new scenario)

  bool ok() const {
    for (const auto& finding : compared)
      if (finding.regression) return false;
    return true;
  }
  std::size_t regressions() const {
    std::size_t n = 0;
    for (const auto& finding : compared) n += finding.regression ? 1 : 0;
    return n;
  }
};

// Compares every "_cps" and "_sims" metric of `current` against
// `baseline`. A "_cps" metric regresses when current < baseline *
// (1 - threshold); a "_sims" metric regresses when current > baseline *
// (1 + threshold), or when a zero-sim baseline (fully warm cache) starts
// simulating at all. Metrics only present on one side are reported but
// never fail the gate (scenarios come and go); improvements never fail.
BenchGateResult compare_bench_reports(const Json& baseline, const Json& current,
                                      double threshold = 0.20);

// History variant: gates `current` against a window of prior reports
// (oldest first) instead of one artifact. Each metric's baseline is the
// LOWER MEDIAN of its values across the entries that carry it, so one
// anomalously fast (or slow) history entry — a quiet CI runner, a thermal
// throttle — cannot move the bar the way diffing the single last artifact
// could. A single-entry history is exactly compare_bench_reports. An empty
// history compares nothing (ok() is true); callers decide whether that
// passes (see bench_gate --allow-missing-baseline).
BenchGateResult compare_bench_history(const std::vector<Json>& history,
                                      const Json& current, double threshold = 0.20);

}  // namespace razorbus::core

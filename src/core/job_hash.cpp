#include "core/job_hash.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "lut/point_store.hpp"

namespace razorbus::core {
namespace {

// Content hash of a trace file's bytes, or a marker when the file cannot
// be read. An unreadable trace must not abort identity computation — the
// job itself will fail (and be recorded as failed) when it tries to load
// the trace, which is the same behavior the batch runner always had.
std::string trace_file_digest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "unreadable";
  lut::Fnv1a fnv;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    fnv.mix(buf, static_cast<std::size_t>(in.gcount()));
    if (!in) break;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv.h));
  return hex;
}

}  // namespace

std::string job_identity(const ScenarioJob& job) {
  std::ostringstream id;
  id << "razorbus-job-v" << kJobHashSchemeVersion << "\n";
  id << "sim-v" << lut::kSimulatorVersion << "\n";
  id << "name=" << job.name << "\n";
  // The resolved spec's canonical JSON: ScenarioSpec::to_json emits every
  // field in a fixed order, so equal specs produce equal bytes. The full
  // spec is hashed — including `threads`, which cannot change results
  // (DESIGN.md §9) but keeps the identity conservative and simple.
  id << "spec=" << job.spec.to_json().dump(0) << "\n";
  if (job.spec.trace.source == TraceSpec::Source::file) {
    id << "trace-file=" << trace_file_digest(job.spec.trace.path) << "\n";
  }
  return id.str();
}

std::uint64_t job_content_hash(const ScenarioJob& job) {
  lut::Fnv1a fnv;
  const std::string identity = job_identity(job);
  fnv.mix(identity.data(), identity.size());
  return fnv.h;
}

std::string job_hash_hex(const ScenarioJob& job) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(job_content_hash(job)));
  return hex;
}

}  // namespace razorbus::core

// Experiment drivers reproducing the paper's evaluation.
//
// Every table and figure of the paper maps to one of these functions; the
// bench binaries are thin printers around them (see DESIGN.md section 4
// for the experiment index).
//
// Each driver exists in two forms with one results contract:
//
//   * The MATERIALIZED form takes `trace::Trace` vectors — every cycle
//     resident in RAM (16 bytes/cycle), indexable, and the golden
//     reference the streamed form is tested against.
//   * The STREAMED form (`*_streamed`, DESIGN.md §12) takes
//     `trace::TraceSource` streams and iterates fixed-size blocks, so
//     campaign length is bounded by simulation time, not memory. Reports
//     are BIT-IDENTICAL to the materialized form on the same word
//     sequence — same integer counts, exactly equal energy/supply doubles
//     (enforced by tests/stream_test.cpp). Both forms obey the width rule:
//     traces wider than the bus throw; narrower traces are legal (surplus
//     wires hold).
//
// Streamed drivers clone their source per shard (one clone per sweep
// supply / suite trace / Monte-Carlo sample), so the §9 determinism
// contract — bit-identical at any thread count — carries over unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "dvs/controller.hpp"
#include "dvs/proportional.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace razorbus::core {

// ------------------------------------------------ streaming configuration
// Block sizing for the streamed drivers: each active stream is served
// through one buffer of `block_cycles` BusWords (1 MiB at the default), so
// peak trace memory is block_cycles x concurrent shards, independent of
// how many cycles the campaign runs. Purely a memory/throughput knob —
// results are bit-identical at ANY block size (the batched engine's totals
// are invariant under span splits, DESIGN.md §5).
struct StreamConfig {
  std::size_t block_cycles = trace::kDefaultBlockCycles;
};

// Block accounting a streamed driver reports (surfaced in BENCH_*.json as
// the stream_* metrics, docs/bench-reports.md): how much trace was pulled
// and the largest trace buffer that was ever resident per shard — the
// peak-RSS-relevant number a memory budget cares about. Counts cover every
// pass the driver makes (the closed-loop baseline shares its pass; each
// sweep supply is its own pass).
struct StreamStats {
  std::size_t block_cycles = 0;       // configured block size
  std::uint64_t blocks = 0;           // next_block pulls, all shards
  std::uint64_t cycles = 0;           // words streamed, all shards
  std::size_t peak_buffer_words = 0;  // largest per-shard trace buffer
  void merge(const StreamStats& other);
};

// ---------------------------------------------------------------- Fig. 4
struct SweepPoint {
  double supply = 0.0;        // regulator output (V)
  double error_rate = 0.0;    // bus timing errors per cycle
  double bus_energy = 0.0;    // J over the traces (wires + leakage)
  double total_energy = 0.0;  // + razor/recovery overhead
  double norm_bus_energy = 0.0;    // relative to the nominal-supply bus energy
  double norm_total_energy = 0.0;  // same normalisation, with overhead
};

struct StaticSweepResult {
  std::vector<SweepPoint> points;   // ascending supply
  double baseline_bus_energy = 0.0; // bus energy at the nominal supply (J)
  double floor_supply = 0.0;        // shadow-safe minimum for this corner
};

// Run the combined traces at every 20 mV grid supply from the corner's
// shadow floor up to nominal. Sharded one supply point per shard (each
// point runs on its own BusSimulator), results in ascending-supply order —
// bit-identical at any thread count (DESIGN.md §9).
StaticSweepResult static_voltage_sweep(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<trace::Trace>& traces, double timing_jitter_sigma = 0.0,
    bus::EngineMode engine = bus::EngineMode::bit_parallel);

// Streamed form: each supply shard clones `source` and drains it block by
// block. A multi-trace sweep is the concatenation of its traces (the
// materialized form runs them back to back through one simulator), so pass
// trace::concatenate_sources for suites. Bit-identical to the materialized
// sweep on the same word sequence.
StaticSweepResult static_voltage_sweep_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const trace::TraceSource& source, double timing_jitter_sigma = 0.0,
    bus::EngineMode engine = bus::EngineMode::bit_parallel,
    const StreamConfig& stream = {}, StreamStats* stats = nullptr);

// ---------------------------------------------------------------- Fig. 5
struct TargetGainPoint {
  double target_error_rate = 0.0;
  double chosen_supply = 0.0;
  double achieved_error_rate = 0.0;
  double energy_gain = 0.0;  // 1 - E(total at chosen) / E(bus at nominal)
};

// Lowest static supply whose combined error rate stays within each target;
// reports the resulting energy gains (0 targets require exactly 0 errors).
std::vector<TargetGainPoint> gains_for_targets(const StaticSweepResult& sweep,
                                               const std::vector<double>& targets);

// ---------------------------------------------------------------- Fig. 6
struct VoltageDistribution {
  std::string benchmark;
  double target_error_rate = 0.0;
  // (supply, fraction of execution time) sorted by supply.
  std::vector<std::pair<double, double>> time_at_voltage;
  double achieved_error_rate = 0.0;
};

VoltageDistribution oracle_voltage_distribution(const DvsBusSystem& system,
                                                const tech::PvtCorner& environment,
                                                const trace::Trace& trace,
                                                double target_error_rate,
                                                std::uint64_t window_cycles = 10000);

// ------------------------------------------------------- Table 1 / Fig. 8
struct WindowSample {
  std::uint64_t end_cycle = 0;
  double supply = 0.0;      // at the window boundary
  double error_rate = 0.0;  // of the closed window
};

// Default relative tolerance for adaptive characterization when a scenario
// opts in via the `lut_tolerance` key: a 2% interpolation-error envelope,
// well under the run-to-run spread of the closed-loop metrics it feeds.
constexpr double kDefaultLutTolerance = 0.02;

// Maps the scalar scenario tolerance onto full LutTolerance bounds: the
// relative envelope is `tol` itself, and the absolute floors (which stop
// refinement from chasing noise where delay or energy approach zero) scale
// with it — tol * 1e-10 s and tol * 1e-13 J, roughly `tol` relative to a
// nominal-supply worst-class delay/energy. `tol <= 0` leaves `base`
// untouched (dense characterization).
lut::LutConfig lut_config_for_tolerance(double tol, lut::LutConfig base = {});

struct DvsRunConfig {
  dvs::ControllerConfig controller{};
  std::uint64_t regulator_delay_cycles = 3000;  // 2 us at 1.5 GHz
  double start_supply = 0.0;                    // 0 = nominal
  double timing_jitter_sigma = 0.0;
  bool record_series = false;                   // keep per-window samples (Fig. 8)
  // Cycle engine for the run. Results are bit-identical either way
  // (DESIGN.md §5); scenario specs select `reference` to cross-check.
  bus::EngineMode engine = bus::EngineMode::bit_parallel;
  // Provenance: adaptive characterization tolerance of the system's table
  // (0 = dense). The run itself only reads the table; campaign drivers use
  // this to build the system via lut_config_for_tolerance().
  double lut_tolerance = 0.0;
};

struct DvsRunReport {
  bus::RunningTotals totals;
  double baseline_bus_energy = 0.0;  // same trace at nominal, conventional bus
  double floor_supply = 0.0;
  double average_supply = 0.0;       // cycle-weighted
  std::vector<WindowSample> series;

  double energy_gain() const {
    return baseline_bus_energy > 0.0
               ? 1.0 - totals.total_energy() / baseline_bus_energy
               : 0.0;
  }
  double error_rate() const { return totals.error_rate(); }
};

// Closed-loop DVS over one trace (controller + ramping regulator).
DvsRunReport run_closed_loop(const DvsBusSystem& system,
                             const tech::PvtCorner& environment,
                             const trace::Trace& trace, const DvsRunConfig& config = {});

// Streamed form: single pass over a clone of `source`, with the
// nominal-supply baseline simulator fed the same blocks in lockstep (so no
// second pass and no materialization anywhere). Control decisions are made
// on the same cycle boundaries as the materialized driver — segments are
// delimited by controller windows and regulator change landings, never by
// block boundaries — so the report is bit-identical.
DvsRunReport run_closed_loop_streamed(const DvsBusSystem& system,
                                      const tech::PvtCorner& environment,
                                      const trace::TraceSource& source,
                                      const DvsRunConfig& config = {},
                                      const StreamConfig& stream = {},
                                      StreamStats* stats = nullptr);

// Fixed-VS baseline: run the trace at the fixed-VS supply for the corner's
// process. Gains are zero errors by construction (at zero jitter; a
// non-zero jitter can push arrivals past the capture limit).
DvsRunReport run_fixed_vs(const DvsBusSystem& system, const tech::PvtCorner& environment,
                          const trace::Trace& trace,
                          bus::EngineMode engine = bus::EngineMode::bit_parallel,
                          double timing_jitter_sigma = 0.0);

DvsRunReport run_fixed_vs_streamed(const DvsBusSystem& system,
                                   const tech::PvtCorner& environment,
                                   const trace::TraceSource& source,
                                   bus::EngineMode engine = bus::EngineMode::bit_parallel,
                                   double timing_jitter_sigma = 0.0,
                                   const StreamConfig& stream = {},
                                   StreamStats* stats = nullptr);

// Closed loop with the PROPORTIONAL controller the paper discusses and
// rejects (Section 5). Same regulator model; the controller requests
// multi-step changes proportional to the band error. Used by the ablation
// bench to test the paper's "simpler is sufficient" argument.
struct ProportionalRunConfig {
  dvs::ProportionalConfig controller{};
  std::uint64_t regulator_delay_cycles = 3000;
  double start_supply = 0.0;
  double timing_jitter_sigma = 0.0;
  bus::EngineMode engine = bus::EngineMode::bit_parallel;
};

DvsRunReport run_closed_loop_proportional(const DvsBusSystem& system,
                                          const tech::PvtCorner& environment,
                                          const trace::Trace& trace,
                                          const ProportionalRunConfig& config = {});

DvsRunReport run_closed_loop_proportional_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const trace::TraceSource& source, const ProportionalRunConfig& config = {},
    const StreamConfig& stream = {}, StreamStats* stats = nullptr);

// Continue a closed-loop run across consecutive traces without resetting
// controller/regulator state (Fig. 8 runs the 10 benchmarks back to back).
struct ConsecutiveRunReport {
  std::vector<DvsRunReport> per_trace;
  std::vector<WindowSample> series;  // stitched, cycle offsets cumulative
};

ConsecutiveRunReport run_consecutive(const DvsBusSystem& system,
                                     const tech::PvtCorner& environment,
                                     const std::vector<trace::Trace>& traces,
                                     const DvsRunConfig& config = {});

// Streamed form of the paper's headline run: the consecutive-benchmark
// stream is executed one source at a time with controller/regulator state
// carried across boundaries, exactly like the materialized driver — this
// is the path that makes billion-cycle Fig. 8 campaigns memory-feasible.
// Sources are NOT cloned (the pass is inherently sequential); per-source
// baselines stream in lockstep with the DVS simulator.
ConsecutiveRunReport run_consecutive_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    const DvsRunConfig& config = {}, const StreamConfig& stream = {},
    StreamStats* stats = nullptr);

// Independent closed-loop / fixed-VS runs over a trace suite (Table 1 runs
// every benchmark separately). Unlike run_consecutive, controller and
// regulator state reset per trace, so the traces are embarrassingly
// parallel: sharded one trace per shard, one BusSimulator per shard,
// reports returned in trace order (DESIGN.md §9).
std::vector<DvsRunReport> run_closed_loop_suite(const DvsBusSystem& system,
                                                const tech::PvtCorner& environment,
                                                const std::vector<trace::Trace>& traces,
                                                const DvsRunConfig& config = {});
std::vector<DvsRunReport> run_fixed_vs_suite(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<trace::Trace>& traces,
    bus::EngineMode engine = bus::EngineMode::bit_parallel,
    double timing_jitter_sigma = 0.0);

// Streamed suite forms: one shard per source, each shard cloning its
// source and running the streamed single-trace driver.
std::vector<DvsRunReport> run_closed_loop_suite_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    const DvsRunConfig& config = {}, const StreamConfig& stream = {},
    StreamStats* stats = nullptr);
std::vector<DvsRunReport> run_fixed_vs_suite_streamed(
    const DvsBusSystem& system, const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    bus::EngineMode engine = bus::EngineMode::bit_parallel,
    double timing_jitter_sigma = 0.0, const StreamConfig& stream = {},
    StreamStats* stats = nullptr);

// ------------------------------------------------- PVT sampling extension
// Monte-Carlo over operating conditions (the paper hand-picks corners; the
// ablation samples a part population instead). Sharded one sample per
// shard: sample s draws its PVT point from a private Rng seeded with
// SplitMix of (seed, s) and runs on its own BusSimulator, so the
// population — and every derived statistic — is bit-identical at any
// thread count (DESIGN.md §9).
struct PvtSampleConfig {
  int samples = 24;
  std::uint64_t seed = 2025;
  DvsRunConfig run{};
};

struct PvtSample {
  tech::PvtCorner corner;
  DvsRunReport report;
};

struct PvtSampleResult {
  std::vector<PvtSample> samples;  // in sample (shard) order
  RunningStats gain_stats;         // merged in shard order
  RunningStats err_stats;
};

PvtSampleResult pvt_sample_gains(const DvsBusSystem& system, const trace::Trace& trace,
                                 const PvtSampleConfig& config = {});

// Streamed form: each sample shard draws its corner from the identical
// per-shard Rng stream, then runs the streamed closed loop on its own
// clone of `source` — the population and every derived statistic match
// the materialized form bit for bit.
PvtSampleResult pvt_sample_gains_streamed(const DvsBusSystem& system,
                                          const trace::TraceSource& source,
                                          const PvtSampleConfig& config = {},
                                          const StreamConfig& stream = {},
                                          StreamStats* stats = nullptr);

}  // namespace razorbus::core

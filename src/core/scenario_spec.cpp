#include "core/scenario_spec.hpp"

#include <map>
#include <set>
#include <stdexcept>

#include "util/busword.hpp"

namespace razorbus::core {

namespace {

[[noreturn]] void bad_spec(const std::string& where, const std::string& message) {
  throw std::invalid_argument("scenario spec: " + where + ": " + message);
}

// When set (record_accepted_keys), every key a Fields reader asks about is
// recorded under its object name — the introspection behind the
// docs/campaigns.md schema cross-check.
// razorlint: allow(no-mutable-static): docs-introspection hook, thread-local
// and null outside record_accepted_keys; parsing results never depend on it.
thread_local std::map<std::string, std::set<std::string>>* g_key_recorder = nullptr;

// Strict reader over one JSON object: typed getters that name the offending
// field on a type mismatch, plus an unknown-key check once parsing is done.
class Fields {
 public:
  Fields(const Json& json, std::string where) : json_(json), where_(std::move(where)) {
    if (!json.is_object()) bad_spec(where_, "expected a JSON object");
  }

  const Json* find(const std::string& key) {
    seen_.insert(key);
    if (g_key_recorder != nullptr) (*g_key_recorder)[where_].insert(key);
    return json_.find(key);
  }

  bool has(const std::string& key) { return find(key) != nullptr; }

  std::string get_string(const std::string& key, const std::string& fallback) {
    const Json* v = find(key);
    if (v == nullptr) return fallback;
    if (!v->is_string()) bad_spec(where_, "'" + key + "' must be a string");
    return v->as_string();
  }

  long long get_int(const std::string& key, long long fallback) {
    const Json* v = find(key);
    if (v == nullptr) return fallback;
    if (!v->is_integer()) bad_spec(where_, "'" + key + "' must be an integer");
    return v->as_int();
  }

  double get_double(const std::string& key, double fallback) {
    const Json* v = find(key);
    if (v == nullptr) return fallback;
    if (!v->is_number()) bad_spec(where_, "'" + key + "' must be a number");
    return v->as_double();
  }

  bool get_bool(const std::string& key, bool fallback) {
    const Json* v = find(key);
    if (v == nullptr) return fallback;
    if (!v->is_bool()) bad_spec(where_, "'" + key + "' must be a boolean");
    return v->as_bool();
  }

  // Throws when the object holds keys nothing asked about (typo defence —
  // a misspelled "cycels" must not silently run with the default).
  void reject_unknown() const {
    for (const auto& member : json_.members())
      if (seen_.count(member.first) == 0)
        bad_spec(where_, "unknown key '" + member.first + "'");
  }

  const std::string& where() const { return where_; }

 private:
  const Json& json_;
  std::string where_;
  std::set<std::string> seen_;
};

tech::PvtCorner corner_from_json(const Json& json, const std::string& where) {
  if (json.is_string()) return corner_from_spec_name(json.as_string());
  Fields f(json, where);
  tech::PvtCorner corner;
  const std::string process = f.get_string("process", "typical");
  try {
    corner.process = tech::process_corner_from_string(process);
  } catch (const std::invalid_argument& e) {
    bad_spec(where, e.what());
  }
  corner.temp_c = f.get_double("temp_c", 100.0);
  corner.ir_drop_fraction = f.get_double("ir_drop", 0.0);
  if (corner.ir_drop_fraction < 0.0 || corner.ir_drop_fraction >= 1.0)
    bad_spec(where, "'ir_drop' must be in [0, 1)");
  f.reject_unknown();
  return corner;
}

Json corner_to_json(const tech::PvtCorner& corner) {
  Json j = Json::object();
  j.set("process", tech::to_string(corner.process));
  j.set("temp_c", corner.temp_c);
  j.set("ir_drop", corner.ir_drop_fraction);
  return j;
}

// Reads a scalar-or-array axis into a vector (a bare value is a 1-element
// axis), applying `parse` to each element.
template <typename Fn>
auto axis_values(const Json& json, Fn&& parse) -> std::vector<decltype(parse(json))> {
  std::vector<decltype(parse(json))> out;
  if (json.is_array()) {
    for (const Json& item : json.items()) out.push_back(parse(item));
  } else {
    out.push_back(parse(json));
  }
  return out;
}

std::string flag_value_to_string(const Json& value, const std::string& where,
                                 const std::string& key) {
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "true" : "false";
  if (value.is_number()) return value.dump(0);
  bad_spec(where, "flag '" + key + "' must be a string, number or boolean");
}

}  // namespace

namespace {

// Scenario and campaign names become result file names and subprocess
// arguments, so they are restricted to a filesystem- and shell-safe set.
void check_name(const std::string& name, const std::string& where) {
  if (name.empty()) bad_spec(where, "'name' must not be empty");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok)
      bad_spec(where, "name '" + name +
                          "' may only contain letters, digits, '_', '-' and '.'");
  }
}

}  // namespace

tech::PvtCorner corner_from_spec_name(const std::string& name) {
  if (name == "typical") return tech::typical_corner();
  if (name == "worst" || name == "worst_case") return tech::worst_case_corner();
  const auto fig5 = tech::fig5_corners();
  for (std::size_t i = 0; i < fig5.size(); ++i)
    if (name == "fig5_" + std::to_string(i + 1)) return fig5[i];
  throw std::invalid_argument("scenario spec: unknown corner name '" + name +
                              "' (expected typical, worst or fig5_1..fig5_5)");
}

// ---------------------------------------------------------------- TraceSpec

TraceSpec TraceSpec::from_json(const Json& json) {
  Fields f(json, "trace");
  TraceSpec spec;
  const std::string source = f.get_string("source", "synthetic");
  if (source == "synthetic") {
    spec.source = Source::synthetic;
    const std::string style = f.get_string("style", "uniform");
    try {
      spec.style = trace::synthetic_style_from_string(style);
    } catch (const std::invalid_argument& e) {
      bad_spec("trace", e.what());
    }
    spec.load_rate = f.get_double("load_rate", 0.4);
    if (spec.load_rate < 0.0 || spec.load_rate > 1.0)
      bad_spec("trace", "'load_rate' must be in [0, 1]");
    spec.activity = f.get_double("activity", 0.5);
    if (spec.activity < 0.0 || spec.activity > 1.0)
      bad_spec("trace", "'activity' must be in [0, 1]");
    const long long seed = f.get_int("seed", 1);
    spec.seed = static_cast<std::uint64_t>(seed);
  } else if (source == "benchmark") {
    spec.source = Source::benchmark;
    spec.benchmark = f.get_string("name", "");
    if (spec.benchmark.empty()) bad_spec("trace", "benchmark source requires 'name'");
  } else if (source == "suite") {
    spec.source = Source::suite;
  } else if (source == "file") {
    spec.source = Source::file;
    spec.path = f.get_string("path", "");
    if (spec.path.empty()) bad_spec("trace", "file source requires 'path'");
  } else {
    bad_spec("trace", "unknown source '" + source +
                          "' (expected synthetic, benchmark, suite or file)");
  }
  f.reject_unknown();
  return spec;
}

Json TraceSpec::to_json() const {
  Json j = Json::object();
  switch (source) {
    case Source::synthetic:
      j.set("source", "synthetic");
      j.set("style", trace::to_string(style));
      j.set("load_rate", load_rate);
      j.set("activity", activity);
      j.set("seed", static_cast<long long>(seed));
      break;
    case Source::benchmark:
      j.set("source", "benchmark");
      j.set("name", benchmark);
      break;
    case Source::suite: j.set("source", "suite"); break;
    case Source::file:
      j.set("source", "file");
      j.set("path", path);
      break;
  }
  return j;
}

// ----------------------------------------------------------- ControllerSpec

ControllerSpec ControllerSpec::from_json(const Json& json) {
  ControllerSpec spec;
  if (json.is_string()) {
    try {
      spec.kind = dvs::controller_kind_from_string(json.as_string());
    } catch (const std::invalid_argument& e) {
      bad_spec("controllers", e.what());
    }
    return spec;
  }
  Fields f(json, "controllers");
  const std::string kind = f.get_string("kind", "threshold");
  try {
    spec.kind = dvs::controller_kind_from_string(kind);
  } catch (const std::invalid_argument& e) {
    bad_spec("controllers", e.what());
  }
  spec.custom_label = f.get_string("label", "");
  if (!spec.custom_label.empty()) check_name(spec.custom_label, "controllers");
  if (spec.kind == dvs::ControllerKind::threshold) {
    spec.threshold.low_threshold = f.get_double("low", spec.threshold.low_threshold);
    spec.threshold.high_threshold = f.get_double("high", spec.threshold.high_threshold);
    spec.threshold.window_cycles = static_cast<std::uint64_t>(
        f.get_int("window", static_cast<long long>(spec.threshold.window_cycles)));
    spec.threshold.voltage_step = f.get_double("step", spec.threshold.voltage_step);
  } else if (spec.kind == dvs::ControllerKind::proportional) {
    spec.proportional.target_error_rate =
        f.get_double("target", spec.proportional.target_error_rate);
    spec.proportional.gain = f.get_double("gain", spec.proportional.gain);
    spec.proportional.window_cycles = static_cast<std::uint64_t>(
        f.get_int("window", static_cast<long long>(spec.proportional.window_cycles)));
    spec.proportional.max_step = f.get_double("max_step", spec.proportional.max_step);
  }
  f.reject_unknown();
  return spec;
}

Json ControllerSpec::to_json() const {
  Json j = Json::object();
  j.set("kind", dvs::to_string(kind));
  if (!custom_label.empty()) j.set("label", custom_label);
  if (kind == dvs::ControllerKind::threshold) {
    j.set("low", threshold.low_threshold);
    j.set("high", threshold.high_threshold);
    j.set("window", static_cast<long long>(threshold.window_cycles));
    j.set("step", threshold.voltage_step);
  } else if (kind == dvs::ControllerKind::proportional) {
    j.set("target", proportional.target_error_rate);
    j.set("gain", proportional.gain);
    j.set("window", static_cast<long long>(proportional.window_cycles));
    j.set("max_step", proportional.max_step);
  }
  return j;
}

// ------------------------------------------------------------------- BusSpec

BusSpec BusSpec::from_json(const Json& json) {
  Fields f(json, "buses");
  BusSpec spec;
  const long long width = f.get_int("width", 32);
  if (width < 1 || width > BusWord::kMaxBits)
    bad_spec("buses", "width " + std::to_string(width) + " out of range 1.." +
                          std::to_string(BusWord::kMaxBits));
  spec.width = static_cast<int>(width);
  spec.weight = f.get_double("weight", 1.0);
  if (!(spec.weight > 0.0)) bad_spec("buses", "'weight' must be > 0");
  if (const Json* trace = f.find("trace")) spec.trace = TraceSpec::from_json(*trace);
  if (spec.trace.source == TraceSpec::Source::suite)
    bad_spec("buses",
             "'suite' traces are not valid for a multi_bus lane (one stream per bus)");
  // The 32-bit mini-CPU streams widen by whole words; a mismatched lane
  // width would silently truncate the trace, so it throws here, before
  // any characterization work starts.
  if (spec.trace.source == TraceSpec::Source::benchmark && spec.width % 32 != 0)
    bad_spec("buses", "benchmark trace '" + spec.trace.benchmark +
                          "' is 32 bits wide but the bus width " +
                          std::to_string(spec.width) + " is not a multiple of 32");
  f.reject_unknown();
  return spec;
}

Json BusSpec::to_json() const {
  Json j = Json::object();
  j.set("width", static_cast<long long>(width));
  j.set("weight", weight);
  j.set("trace", trace.to_json());
  return j;
}

// ----------------------------------------------------------------- DriftSpec

namespace {

void check_drift_state(const std::string& where, double temp_c, double vth_shift) {
  if (temp_c < -55.0 || temp_c > 150.0)
    bad_spec(where, "temperature " + std::to_string(temp_c) +
                        " out of range [-55, 150]");
  if (vth_shift < 0.0 || vth_shift > 0.3)
    bad_spec(where, "'vth_shift' must be in [0, 0.3] volts");
}

}  // namespace

DriftSpec DriftSpec::from_json(const Json& json) {
  Fields f(json, "drift");
  DriftSpec spec;
  spec.enabled = true;
  // Look every key up in both branches so the accepted-key sets (and so
  // the docs cross-check) do not depend on which branch a document takes.
  const Json* points = f.find("points");
  const Json* temp_start = f.find("temp_start");
  const Json* temp_end = f.find("temp_end");
  const Json* vth_start = f.find("vth_shift_start");
  const Json* vth_end = f.find("vth_shift_end");
  const auto number = [](const Json* v, const char* key, double fallback) {
    if (v == nullptr) return fallback;
    if (!v->is_number())
      bad_spec("drift", "'" + std::string(key) + "' must be a number");
    return v->as_double();
  };
  if (points != nullptr) {
    if (temp_start != nullptr || temp_end != nullptr || vth_start != nullptr ||
        vth_end != nullptr)
      bad_spec("drift", "'points' excludes the linear ramp keys "
                        "(temp_start/temp_end/vth_shift_start/vth_shift_end)");
    if (!points->is_array() || points->size() == 0)
      bad_spec("drift", "'points' must be a non-empty array");
    for (const Json& p : points->items()) {
      Fields pf(p, "drift_points");
      DriftPointSpec point;
      const long long cycle = pf.get_int("cycle", -1);
      if (cycle < 0) bad_spec("drift_points", "'cycle' must be an integer >= 0");
      point.cycle = static_cast<std::uint64_t>(cycle);
      point.temp_c = pf.get_double("temp_c", 25.0);
      point.vth_shift = pf.get_double("vth_shift", 0.0);
      check_drift_state("drift_points", point.temp_c, point.vth_shift);
      pf.reject_unknown();
      if (!spec.points.empty() && point.cycle <= spec.points.back().cycle)
        bad_spec("drift", "'points' cycles must be strictly increasing");
      spec.points.push_back(point);
    }
  } else {
    spec.temp_start = number(temp_start, "temp_start", 25.0);
    spec.temp_end = number(temp_end, "temp_end", spec.temp_start);
    spec.vth_shift_start = number(vth_start, "vth_shift_start", 0.0);
    spec.vth_shift_end = number(vth_end, "vth_shift_end", spec.vth_shift_start);
    check_drift_state("drift", spec.temp_start, spec.vth_shift_start);
    check_drift_state("drift", spec.temp_end, spec.vth_shift_end);
  }
  f.reject_unknown();
  return spec;
}

Json DriftSpec::to_json() const {
  Json j = Json::object();
  if (!points.empty()) {
    Json jp = Json::array();
    for (const auto& point : points) {
      Json p = Json::object();
      p.set("cycle", static_cast<long long>(point.cycle));
      p.set("temp_c", point.temp_c);
      p.set("vth_shift", point.vth_shift);
      jp.push(std::move(p));
    }
    j.set("points", std::move(jp));
  } else {
    j.set("temp_start", temp_start);
    j.set("temp_end", temp_end);
    j.set("vth_shift_start", vth_shift_start);
    j.set("vth_shift_end", vth_shift_end);
  }
  return j;
}

// --------------------------------------------------------------- ScenarioSpec

ScenarioSpec ScenarioSpec::from_json(const Json& json) {
  ScenarioSpec spec;
  if (json.is_string()) {  // shorthand: "fig4_voltage_sweep"
    spec.kind = Kind::bench;
    spec.bench = json.as_string();
    spec.name = spec.bench;
    check_name(spec.name, "scenario");
    return spec;
  }
  Fields f(json, "scenario");
  const bool is_bench = f.has("bench");
  const bool is_experiment = f.has("experiment");
  if (is_bench == is_experiment)
    bad_spec("scenario", "exactly one of 'bench' or 'experiment' is required");

  const long long cycles = f.get_int("cycles", 0);
  if (cycles < 0) bad_spec("scenario", "'cycles' must be >= 0");
  spec.cycles = static_cast<std::size_t>(cycles);
  const long long threads = f.get_int("threads", 0);
  if (threads < 0) bad_spec("scenario", "'threads' must be >= 0");
  spec.threads = static_cast<unsigned>(threads);

  if (is_bench) {
    spec.kind = Kind::bench;
    spec.bench = f.get_string("bench", "");
    spec.name = f.get_string("name", spec.bench);
    check_name(spec.name, "scenario");
    if (const Json* flags = f.find("flags")) {
      if (!flags->is_object()) bad_spec("scenario", "'flags' must be an object");
      for (const auto& member : flags->members()) {
        // The runner owns these; a shadowing "json" would silently redirect
        // the job's report out from under the campaign aggregation.
        if (member.first == "json" || member.first == "cycles" ||
            member.first == "threads")
          bad_spec("scenario", "flag '" + member.first +
                                   "' is reserved (use the spec's own keys)");
        spec.flags.emplace_back(
            member.first, flag_value_to_string(member.second, "scenario", member.first));
      }
    }
    f.reject_unknown();
    return spec;
  }

  const std::string experiment = f.get_string("experiment", "");
  if (experiment == "closed_loop")
    spec.kind = Kind::closed_loop;
  else if (experiment == "static_sweep")
    spec.kind = Kind::static_sweep;
  else if (experiment == "multi_bus")
    spec.kind = Kind::multi_bus;
  else
    bad_spec("scenario", "unknown experiment '" + experiment +
                             "' (expected closed_loop, static_sweep or multi_bus)");

  spec.name = f.get_string("name", "");
  if (spec.name.empty()) bad_spec("scenario", "declarative scenarios require 'name'");
  check_name(spec.name, "scenario");

  if (const Json* trace = f.find("trace")) {
    if (spec.kind == Kind::multi_bus)
      bad_spec("scenario",
               "multi_bus experiments take per-bus 'trace' entries inside 'buses'");
    spec.trace = TraceSpec::from_json(*trace);
  }

  if (const Json* buses = f.find("buses")) {
    if (spec.kind != Kind::multi_bus)
      bad_spec("scenario", "'buses' only applies to multi_bus experiments");
    if (!buses->is_array() || buses->size() == 0)
      bad_spec("scenario", "'buses' must be a non-empty array");
    for (const Json& bus : buses->items())
      spec.buses.push_back(BusSpec::from_json(bus));
  } else if (spec.kind == Kind::multi_bus) {
    bad_spec("scenario", "multi_bus experiments require 'buses'");
  }

  if (const Json* arbitration = f.find("arbitration")) {
    if (spec.kind != Kind::multi_bus)
      bad_spec("scenario", "'arbitration' only applies to multi_bus experiments");
    if (!arbitration->is_string())
      bad_spec("scenario", "'arbitration' must be a string");
    try {
      spec.arbitration = dvs::arbitration_policy_from_string(arbitration->as_string());
    } catch (const std::invalid_argument& e) {
      bad_spec("scenario", e.what());
    }
  }

  if (const Json* widths = f.find("widths")) {
    if (spec.kind == Kind::multi_bus)
      bad_spec("scenario",
               "multi_bus experiments take per-bus 'width' entries inside 'buses'");
    spec.widths = axis_values(*widths, [](const Json& w) {
      if (!w.is_integer()) bad_spec("scenario", "'widths' entries must be integers");
      return static_cast<int>(w.as_int());
    });
    if (spec.widths.empty()) bad_spec("scenario", "'widths' must not be empty");
    for (const int width : spec.widths)
      if (width < 1 || width > BusWord::kMaxBits)
        bad_spec("scenario", "width " + std::to_string(width) + " out of range 1.." +
                                 std::to_string(BusWord::kMaxBits));
  }

  if (const Json* controllers = f.find("controllers")) {
    if (spec.kind == Kind::static_sweep)
      bad_spec("scenario",
               "'controllers' only applies to closed_loop and multi_bus experiments");
    spec.controllers = axis_values(
        *controllers, [](const Json& c) { return ControllerSpec::from_json(c); });
    if (spec.controllers.empty()) bad_spec("scenario", "'controllers' must not be empty");
  } else if (spec.kind == Kind::closed_loop || spec.kind == Kind::multi_bus) {
    spec.controllers.push_back(ControllerSpec{});
  }
  if (spec.kind == Kind::multi_bus)
    for (const auto& controller : spec.controllers)
      if (controller.kind != dvs::ControllerKind::threshold)
        bad_spec("scenario",
                 "multi_bus experiments require threshold controllers (cross-bus "
                 "arbitration fuses into one threshold controller input)");

  if (const Json* corners = f.find("corners")) {
    spec.corners = axis_values(
        *corners, [](const Json& c) { return corner_from_json(c, "corners"); });
    if (spec.corners.empty()) bad_spec("scenario", "'corners' must not be empty");
  } else {
    spec.corners.push_back(tech::typical_corner());
  }

  const std::string encoding = f.get_string("encoding", "none");
  if (encoding == "bus_invert")
    spec.bus_invert = true;
  else if (encoding != "none")
    bad_spec("scenario",
             "unknown encoding '" + encoding + "' (expected none or bus_invert)");

  const std::string engine = f.get_string("engine", "bit_parallel");
  try {
    spec.engine = bus::engine_mode_from_string(engine);
  } catch (const std::invalid_argument& e) {
    bad_spec("scenario", e.what());
  }

  spec.timing_jitter_sigma = f.get_double("timing_jitter_sigma", 0.0);
  if (spec.timing_jitter_sigma < 0.0)
    bad_spec("scenario", "'timing_jitter_sigma' must be >= 0");

  spec.stream = f.get_bool("stream", false);

  spec.lut_tolerance = f.get_double("lut_tolerance", 0.0);
  if (spec.lut_tolerance < 0.0) bad_spec("scenario", "'lut_tolerance' must be >= 0");

  if (const Json* drift = f.find("drift")) {
    if (spec.kind == Kind::static_sweep)
      bad_spec("scenario",
               "'drift' only applies to closed_loop and multi_bus experiments");
    spec.drift = DriftSpec::from_json(*drift);
    // Drift rides the window-granular threshold loop; the other controller
    // kinds have no window boundary to re-derive the corner at.
    for (const auto& controller : spec.controllers)
      if (controller.kind != dvs::ControllerKind::threshold)
        bad_spec("scenario", "drift runs require threshold controllers");
  }

  f.reject_unknown();
  return spec;
}

Json ScenarioSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  if (kind == Kind::bench) {
    j.set("bench", bench);
    if (!flags.empty()) {
      Json jf = Json::object();
      for (const auto& [key, value] : flags) jf.set(key, value);
      j.set("flags", std::move(jf));
    }
  } else {
    j.set("experiment", kind == Kind::closed_loop     ? "closed_loop"
                        : kind == Kind::static_sweep ? "static_sweep"
                                                     : "multi_bus");
    if (kind == Kind::multi_bus) {
      Json jb = Json::array();
      for (const auto& bus : buses) jb.push(bus.to_json());
      j.set("buses", std::move(jb));
      j.set("arbitration", dvs::to_string(arbitration));
    } else {
      j.set("trace", trace.to_json());
      Json jw = Json::array();
      for (const int width : widths) jw.push(width);
      j.set("widths", std::move(jw));
    }
    if (kind == Kind::closed_loop || kind == Kind::multi_bus) {
      Json jc = Json::array();
      for (const auto& controller : controllers) jc.push(controller.to_json());
      j.set("controllers", std::move(jc));
    }
    Json jcorners = Json::array();
    for (const auto& corner : corners) jcorners.push(corner_to_json(corner));
    j.set("corners", std::move(jcorners));
    j.set("encoding", bus_invert ? "bus_invert" : "none");
    j.set("engine", bus::to_string(engine));
    if (timing_jitter_sigma > 0.0) j.set("timing_jitter_sigma", timing_jitter_sigma);
    if (stream) j.set("stream", true);
    if (lut_tolerance > 0.0) j.set("lut_tolerance", lut_tolerance);
    if (drift.enabled) j.set("drift", drift.to_json());
  }
  if (cycles > 0) j.set("cycles", static_cast<long long>(cycles));
  if (threads > 0) j.set("threads", static_cast<long long>(threads));
  return j;
}

// --------------------------------------------------------------- CampaignSpec

CampaignSpec CampaignSpec::from_json(const Json& json) {
  Fields f(json, "campaign");
  CampaignSpec campaign;
  campaign.name = f.get_string("name", "campaign");
  check_name(campaign.name, "campaign");
  campaign.description = f.get_string("description", "");
  if (const Json* defaults = f.find("defaults")) {
    Fields d(*defaults, "defaults");
    const long long cycles = d.get_int("cycles", 0);
    if (cycles < 0) bad_spec("defaults", "'cycles' must be >= 0");
    campaign.default_cycles = static_cast<std::size_t>(cycles);
    const long long threads = d.get_int("threads", 0);
    if (threads < 0) bad_spec("defaults", "'threads' must be >= 0");
    campaign.default_threads = static_cast<unsigned>(threads);
    d.reject_unknown();
  }
  const Json* scenarios = f.find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array() || scenarios->size() == 0)
    bad_spec("campaign", "'scenarios' must be a non-empty array");
  for (const Json& scenario : scenarios->items())
    campaign.scenarios.push_back(ScenarioSpec::from_json(scenario));
  f.reject_unknown();
  return campaign;
}

CampaignSpec CampaignSpec::from_file(const std::string& path) {
  return from_json(Json::parse_file(path));
}

Json CampaignSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  if (!description.empty()) j.set("description", description);
  if (default_cycles > 0 || default_threads > 0) {
    Json defaults = Json::object();
    if (default_cycles > 0)
      defaults.set("cycles", static_cast<long long>(default_cycles));
    if (default_threads > 0)
      defaults.set("threads", static_cast<long long>(default_threads));
    j.set("defaults", std::move(defaults));
  }
  Json js = Json::array();
  for (const auto& scenario : scenarios) js.push(scenario.to_json());
  j.set("scenarios", std::move(js));
  return j;
}

// ------------------------------------------------------------ introspection

std::map<std::string, std::set<std::string>> record_accepted_keys(const Json& campaign) {
  std::map<std::string, std::set<std::string>> keys;
  g_key_recorder = &keys;
  try {
    CampaignSpec::from_json(campaign);
  } catch (...) {
    g_key_recorder = nullptr;
    throw;
  }
  g_key_recorder = nullptr;
  return keys;
}

// ------------------------------------------------------------------ expansion

std::vector<ScenarioJob> expand_campaign(const CampaignSpec& campaign) {
  std::vector<ScenarioJob> jobs;
  std::set<std::string> names;
  for (const ScenarioSpec& scenario : campaign.scenarios) {
    ScenarioSpec base = scenario;
    if (base.cycles == 0) base.cycles = campaign.default_cycles;
    if (base.threads == 0) base.threads = campaign.default_threads;

    const auto add_job = [&](std::string job_name, ScenarioSpec spec) {
      if (!names.insert(job_name).second)
        throw std::invalid_argument("campaign '" + campaign.name +
                                    "': duplicate job name '" + job_name +
                                    "' after expansion");
      jobs.push_back(ScenarioJob{std::move(job_name), std::move(spec)});
    };

    if (base.kind == ScenarioSpec::Kind::bench) {
      add_job(base.name, base);
      continue;
    }

    // The cross product: one job per (width, controller). Axis suffixes are
    // only appended when the axis actually varies, so a single-point
    // scenario keeps its plain name.
    const bool has_controller_axis =
        base.kind == ScenarioSpec::Kind::closed_loop ||
        base.kind == ScenarioSpec::Kind::multi_bus;
    const bool many_widths = base.widths.size() > 1;
    std::vector<ControllerSpec> controllers = base.controllers;
    if (controllers.empty()) controllers.push_back(ControllerSpec{});  // static_sweep
    const bool many_controllers = has_controller_axis && base.controllers.size() > 1;

    // Tuning sweeps repeat a controller kind; unlabelled duplicates get an
    // occurrence suffix so their job names stay distinct.
    std::vector<std::string> controller_labels(controllers.size());
    std::map<std::string, int> label_uses;
    for (std::size_t c = 0; c < controllers.size(); ++c) {
      const int occurrence = ++label_uses[controllers[c].label()];
      controller_labels[c] =
          controllers[c].label() +
          (occurrence > 1 ? "_" + std::to_string(occurrence) : "");
    }

    for (const int width : base.widths) {
      for (std::size_t c = 0; c < controllers.size(); ++c) {
        ScenarioSpec job = base;
        job.widths = {width};
        job.controllers = has_controller_axis
                              ? std::vector<ControllerSpec>{controllers[c]}
                              : std::vector<ControllerSpec>{};
        std::string job_name = base.name;
        if (many_widths) job_name += "_w" + std::to_string(width);
        if (many_controllers) job_name += "_" + controller_labels[c];
        job.name = job_name;
        add_job(std::move(job_name), std::move(job));
        if (!has_controller_axis) break;  // one controller pass (static_sweep)
      }
    }
  }
  return jobs;
}

}  // namespace razorbus::core

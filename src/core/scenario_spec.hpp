// Declarative scenario campaigns (DESIGN.md §11).
//
// A campaign file is a JSON document declaring a list of scenarios. Each
// scenario is either a reference to a registered bench harness ("bench":
// "fig4_voltage_sweep") or a fully declarative experiment ("experiment":
// "closed_loop" / "static_sweep" / "multi_bus") built from data: trace
// source (synthetic family + seed, mini-CPU benchmark, the whole suite, or
// a trace file), bus widths, encoding, DVS controllers, PVT corners, cycle
// budget, thread count, engine mode — and, for multi_bus, the per-bus lane
// list plus the cross-bus arbitration policy, and for closed-loop kinds an
// optional drift schedule. The `widths` and `controllers` axes are
// cross-product axes: expand_campaign() multiplies them out into concrete
// single-width single-controller ScenarioJobs the `campaign` binary
// executes as shards.
//
// Parsing is STRICT: unknown keys, wrong value types and out-of-range
// widths all throw std::invalid_argument naming the offending field, so a
// typo'd campaign file fails before any characterization work starts.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bus/simulator.hpp"
#include "dvs/arbitration.hpp"
#include "dvs/controller.hpp"
#include "dvs/proportional.hpp"
#include "tech/corner.hpp"
#include "trace/synthetic.hpp"
#include "util/json.hpp"

namespace razorbus::core {

// Where a declarative scenario's bus words come from.
struct TraceSpec {
  enum class Source { synthetic, benchmark, suite, file };
  Source source = Source::synthetic;

  // source == synthetic
  trace::SyntheticStyle style = trace::SyntheticStyle::uniform;
  double load_rate = 0.4;
  double activity = 0.5;
  std::uint64_t seed = 1;

  // source == benchmark: one mini-CPU kernel by name (suite = all 10).
  std::string benchmark;

  // source == file: a trace file saved by trace::save_trace_file.
  std::string path;

  static TraceSpec from_json(const Json& json);
  Json to_json() const;
};

// One supply-control scheme of the `controllers` axis.
struct ControllerSpec {
  dvs::ControllerKind kind = dvs::ControllerKind::threshold;
  dvs::ControllerConfig threshold{};        // kind == threshold
  dvs::ProportionalConfig proportional{};   // kind == proportional
  // Optional explicit axis label ({"label": "tight_band"}); tuning sweeps
  // over one controller kind need it to keep their job names distinct
  // (unlabelled duplicates are auto-suffixed _2, _3, ... on expansion).
  std::string custom_label;

  // Axis label used in job names and metric keys ("threshold", ...).
  std::string label() const {
    return custom_label.empty() ? dvs::to_string(kind) : custom_label;
  }

  // Accepts a bare string ("threshold") or an object with tuning knobs
  // ({"kind": "threshold", "low": 0.01, "high": 0.02, "window": 10000}).
  static ControllerSpec from_json(const Json& json);
  Json to_json() const;
};

// One bus of a `multi_bus` system scenario (docs/campaigns.md `buses`):
// its own width and traffic source, plus the arbitration weight read by
// the `weighted` fusion policy. Lengths and electrical knobs follow the
// width via interconnect::wide_bus, like single-bus jobs.
struct BusSpec {
  int width = 32;
  double weight = 1.0;
  TraceSpec trace;

  static BusSpec from_json(const Json& json);
  Json to_json() const;
};

// Environmental drift over a closed_loop / multi_bus run (docs/campaigns.md
// `drift`): either a linear ramp over the job's cycle budget or explicit
// piecewise breakpoints. Temperatures are absolute junction temperatures
// (they replace the corner's temp_c, quantised to the characterised axis);
// `vth_shift` is the aging-induced threshold increase in volts. Pure data —
// sys::schedule_from_spec resolves it into a drift::Schedule once the cycle
// budget is known.
struct DriftPointSpec {
  std::uint64_t cycle = 0;
  double temp_c = 25.0;
  double vth_shift = 0.0;
};

struct DriftSpec {
  bool enabled = false;
  // Linear form (points empty): ramp from start at cycle 0 to end at the
  // job's resolved cycle budget.
  double temp_start = 25.0;
  double temp_end = 25.0;
  double vth_shift_start = 0.0;
  double vth_shift_end = 0.0;
  // Piecewise form: breakpoints with strictly increasing cycles.
  std::vector<DriftPointSpec> points;

  static DriftSpec from_json(const Json& json);
  Json to_json() const;
};

struct ScenarioSpec {
  // bench: a registered harness run through the exact legacy code path.
  // closed_loop / static_sweep / multi_bus: declarative experiments
  // (multi_bus = N buses sharing one regulator, sys::BusSystem).
  enum class Kind { bench, closed_loop, static_sweep, multi_bus };

  std::string name;  // job-name stem; defaults to the bench name
  Kind kind = Kind::bench;

  // kind == bench
  std::string bench;
  // Extra --name=value flags forwarded to the harness (insertion order).
  std::vector<std::pair<std::string, std::string>> flags;

  // Shared knobs.
  std::size_t cycles = 0;   // 0 = scenario/campaign default
  unsigned threads = 0;     // executor width; 0 = hardware concurrency
  bus::EngineMode engine = bus::EngineMode::bit_parallel;

  // Declarative knobs (cross-product axes: widths x controllers).
  TraceSpec trace;
  std::vector<int> widths{32};
  // closed_loop and multi_bus; default threshold. multi_bus restricts the
  // axis to threshold controllers (arbitration fuses into one threshold
  // controller input).
  std::vector<ControllerSpec> controllers;
  std::vector<tech::PvtCorner> corners;     // default: typical

  // kind == multi_bus: the lanes of the shared-supply system and the
  // cross-bus error-fusion policy (docs/campaigns.md `buses`).
  std::vector<BusSpec> buses;
  dvs::ArbitrationPolicy arbitration = dvs::ArbitrationPolicy::max_error;

  // closed_loop / multi_bus: optional environmental drift schedule.
  DriftSpec drift;
  bool bus_invert = false;  // encode the trace with bus-invert coding first
  double timing_jitter_sigma = 0.0;
  // Stream the trace through the experiment in bounded-memory blocks
  // (DESIGN.md §12) instead of materializing it: `cycles` may then exceed
  // what RAM could hold (results are bit-identical either way; the job
  // report gains stream_* block-accounting metrics).
  bool stream = false;
  // Relative error envelope for adaptive characterization of the system's
  // delay/energy table (docs/characterization.md). 0 keeps the dense
  // sweep; core::kDefaultLutTolerance is the recommended opt-in value.
  double lut_tolerance = 0.0;

  static ScenarioSpec from_json(const Json& json);
  Json to_json() const;
};

struct CampaignSpec {
  std::string name;
  std::string description;
  std::size_t default_cycles = 0;  // applied to scenarios with cycles == 0
  unsigned default_threads = 0;
  std::vector<ScenarioSpec> scenarios;

  static CampaignSpec from_json(const Json& json);
  // Reads and parses a campaign file; throws std::runtime_error on I/O
  // failure and std::invalid_argument / JsonParseError on bad content.
  static CampaignSpec from_file(const std::string& path);
  Json to_json() const;
};

// One runnable unit after cross-product expansion: a single width, a single
// controller, cycles/threads resolved against the campaign defaults. The
// job name is the scenario name plus `_w<width>` / `_<controller>` suffixes
// for every axis with more than one value.
struct ScenarioJob {
  std::string name;
  ScenarioSpec spec;
};

// Expands scenarios x widths x controllers; throws std::invalid_argument
// when two jobs would collide on a name.
std::vector<ScenarioJob> expand_campaign(const CampaignSpec& campaign);

// Named PVT corner for specs: "typical", "worst" / "worst_case", or one of
// tech::fig5_corners() as "fig5_1" .. "fig5_5".
tech::PvtCorner corner_from_spec_name(const std::string& name);

// Accepted-key introspection for the schema reference in docs/campaigns.md:
// parses `campaign` (a campaign document) with key recording enabled and
// returns, per spec object ("campaign", "defaults", "scenario", "trace",
// "controllers", "corners", "buses", "drift", "drift_points"), every key
// the STRICT parser actually looked
// up along the branches the document exercised. Because unknown keys
// throw, looked-up keys == accepted keys. tests/docs_test.cpp feeds this
// an exemplar document covering every branch and cross-checks the result
// against the documented schema tables, so the docs cannot drift from the
// parser.
std::map<std::string, std::set<std::string>> record_accepted_keys(const Json& campaign);

}  // namespace razorbus::core

// Per-cycle pattern classification.
//
// Given the previous and current words on the bus, each signal wire is
// assigned the pattern class (victim transition, left activity, right
// activity) used to index the delay/energy tables. Shield positions come
// from the bus layout (a shield after every `shield_group` signals).
//
// Two forms are provided:
//   * classify()/classify_all(): one wire at a time — the per-wire golden
//     reference path;
//   * masks(): twelve BusWord masks (victim/left/right activity per axis
//     value) computed with a handful of lane-parallel bitwise ops, from
//     which the wire set of every pattern class present this cycle is an
//     AND of three masks. This is the kernel of the bit-parallel
//     simulation engine: a class's multiplicity is a popcount, so
//     per-cycle energy becomes a dot product of class counts against the
//     table slice. Everything is width-generic up to BusWord::kMaxBits
//     (128) wires.
#pragma once

#include <cstdint>

#include "interconnect/bus_design.hpp"
#include "lut/pattern.hpp"
#include "util/busword.hpp"

namespace razorbus::bus {

// Activity masks of one prev -> cur transition. Indexed by the enum values
// of lut::VictimActivity / lut::NeighborActivity; bit i of victim[v] is set
// iff wire i's victim activity is `v` (similarly for the neighbor axes).
// The wire mask of pattern class (v, l, r) is victim[v] & left[l] & right[r].
struct ClassMaskSet {
  BusWord victim[4];
  BusWord left[4];
  BusWord right[4];
};

// Precomputed per-bit shield adjacency for fast classification.
class WireClassifier {
 public:
  explicit WireClassifier(const interconnect::BusDesign& design);

  int n_bits() const { return n_bits_; }
  // Mask with one bit set per signal wire (bits 0..n_bits-1).
  const BusWord& bits_mask() const { return bits_mask_; }

  // Pattern class of wire `bit` for the prev -> cur word transition.
  int classify(const BusWord& prev, const BusWord& cur, int bit) const;

  // Classify all wires at once into `out` (must hold n_bits entries).
  void classify_all(const BusWord& prev, const BusWord& cur, int* out) const;

  // Bit-parallel classification of all wires at once.
  ClassMaskSet masks(const BusWord& prev, const BusWord& cur) const {
    const BusWord& m = bits_mask_;
    const BusWord toggle = (prev ^ cur) & m;
    const BusWord rise = toggle & cur;
    const BusWord fall = toggle & ~cur;

    ClassMaskSet s;
    s.victim[static_cast<int>(lut::VictimActivity::rise)] = rise;
    s.victim[static_cast<int>(lut::VictimActivity::fall)] = fall;
    s.victim[static_cast<int>(lut::VictimActivity::hold_low)] = ~toggle & ~cur & m;
    s.victim[static_cast<int>(lut::VictimActivity::hold_high)] = ~toggle & cur & m;

    // Bit i's left neighbor is wire i-1, so its activity mask is the
    // victim mask shifted up; shield positions override. Wires outside
    // 0..n_bits-1 never reach the signal masks (everything is ANDed with
    // bits_mask_, and the edge wires are shield-adjacent by construction).
    const BusWord& ls = left_shield_mask_;
    const BusWord& rs = right_shield_mask_;
    const BusWord lsig = ~ls & m;
    const BusWord rsig = ~rs & m;
    s.left[static_cast<int>(lut::NeighborActivity::rise)] = (rise << 1) & lsig;
    s.left[static_cast<int>(lut::NeighborActivity::fall)] = (fall << 1) & lsig;
    s.left[static_cast<int>(lut::NeighborActivity::hold)] = ~(toggle << 1) & lsig;
    s.left[static_cast<int>(lut::NeighborActivity::shield)] = ls;
    s.right[static_cast<int>(lut::NeighborActivity::rise)] = (rise >> 1) & rsig;
    s.right[static_cast<int>(lut::NeighborActivity::fall)] = (fall >> 1) & rsig;
    s.right[static_cast<int>(lut::NeighborActivity::hold)] = ~(toggle >> 1) & rsig;
    s.right[static_cast<int>(lut::NeighborActivity::shield)] = rs;
    return s;
  }

 private:
  int n_bits_;
  BusWord bits_mask_;
  BusWord left_shield_mask_;
  BusWord right_shield_mask_;
};

// Visit every pattern class present in `s` in ascending class order:
// fn(class, wire_mask) with wire_mask != 0. The iteration order (and the
// set of visited classes) is part of the engine parity contract — energy
// accumulation order must match between the engines (see DESIGN.md §5).
template <typename Fn>
inline void for_each_present_class(const ClassMaskSet& s, Fn&& fn) {
  for (int v = 0; v < 4; ++v) {
    const BusWord vm = s.victim[v];
    if (!vm.any()) continue;
    for (int l = 0; l < 4; ++l) {
      const BusWord vl = vm & s.left[l];
      if (!vl.any()) continue;
      for (int r = 0; r < 4; ++r) {
        const BusWord mask = vl & s.right[r];
        if (mask.any()) fn((v << 4) | (l << 2) | r, mask);
      }
    }
  }
}

}  // namespace razorbus::bus

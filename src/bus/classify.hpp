// Per-cycle, per-wire pattern classification.
//
// Given the previous and current words on the bus, each signal wire is
// assigned the pattern class (victim transition, left activity, right
// activity) used to index the delay/energy tables. Shield positions come
// from the bus layout (a shield after every `shield_group` signals).
#pragma once

#include <array>
#include <cstdint>

#include "interconnect/bus_design.hpp"
#include "lut/pattern.hpp"

namespace razorbus::bus {

// Precomputed per-bit shield adjacency for fast classification.
class WireClassifier {
 public:
  explicit WireClassifier(const interconnect::BusDesign& design);

  int n_bits() const { return n_bits_; }

  // Pattern class of wire `bit` for the prev -> cur word transition.
  int classify(std::uint32_t prev, std::uint32_t cur, int bit) const;

  // Classify all wires at once into `out` (must hold n_bits entries).
  void classify_all(std::uint32_t prev, std::uint32_t cur, int* out) const;

 private:
  int n_bits_;
  std::array<bool, 32> left_shield_{};
  std::array<bool, 32> right_shield_{};
};

}  // namespace razorbus::bus

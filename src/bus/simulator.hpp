// Cycle-level simulator of the DVS bus with double-sampling receivers.
//
// Each cycle a bus word (up to BusWord::kMaxBits = 128 wires) is driven
// onto the bus. The simulator classifies the switching pattern of every
// wire, looks up in-to-out delays and supply energies in the characterised
// tables, decides which receivers erred, and accrues leakage and
// flop/recovery overheads. This is the engine behind every experiment:
// static voltage sweeps (Fig. 4/5), the oracle distribution study (Fig. 6),
// and closed-loop DVS runs (Table 1, Fig. 8) — at any
// `interconnect::BusDesign` width (the paper's 32-wire bus, 16-wire
// peripheral buses, 64-wire memory buses, 128-wire cacheline flits).
//
// Two engines implement the same cycle semantics (see DESIGN.md §5):
//
//   * EngineMode::reference — the per-wire golden model: every wire is
//     classified on its own, every DoubleSamplingFlop of the receiver bank
//     is clocked with its arrival time. Slow, but structurally mirrors the
//     hardware; kept as the oracle the fast engine is tested against.
//
//   * EngineMode::bit_parallel (default) — the production engine. The
//     shield wires partition the bus into independent groups (4 signals
//     per group on the paper bus), so each group's dynamic energy, error /
//     shadow-failure wire masks and worst arrival are a pure function of
//     its (prev, cur) bit pair — precomputed per operating point into
//     per-group combo tables, lane-indexed into the BusWord. The per-cycle
//     hot path is then one table lookup per group plus a handful of
//     OR/max/add reductions. Cycles with timing jitter fall back to
//     bit-parallel per-class verdicts (all wires of a pattern class share
//     one delay, so the verdict loop touches present classes, not wires),
//     still reading energy from the combo tables. Totals are bit-identical
//     to the reference engine, cycle for cycle.
//
// The batched run() entry point drives whole words[] spans (e.g. one
// regulator window) through the hot loop with totals accumulated in
// registers — this is what the experiment drivers use.
//
// A third mode, EngineMode::simd, selects the same bit-parallel cycle
// semantics but tells multi-operating-point DRIVERS (static sweeps, PVT
// sampling) to batch their points through MultiPointEngine (DESIGN.md
// §13): one pass over the trace evaluates N (supply, corner) points with
// the per-cycle pattern classification done once and the per-point
// delay/energy/verdict evaluation laid out structure-of-arrays, vectorized
// via util/simd.hpp. Per-point totals are bit-identical to running the
// single-point engine once per point — a scheduling choice, never a
// semantic one. On a single BusSimulator, simd behaves exactly like
// bit_parallel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bus/classify.hpp"
#include "interconnect/bus_design.hpp"
#include "lut/table.hpp"
#include "razor/bank.hpp"
#include "tech/corner.hpp"
#include "tech/leakage.hpp"
#include "trace/source.hpp"
#include "util/busword.hpp"
#include "util/rng.hpp"

namespace razorbus::bus {

// Which cycle engine drives the simulation (see file comment). `simd` is
// bit_parallel semantics plus a driver-level promise: multi-point
// consumers batch their operating points through MultiPointEngine.
enum class EngineMode { bit_parallel, reference, simd };

// Engine names as used by the scenario specs ("bit_parallel", "reference",
// "simd"); from_string throws std::invalid_argument on unknown names.
std::string to_string(EngineMode mode);
EngineMode engine_mode_from_string(const std::string& name);

namespace detail {

// Capture verdict of a whole pattern class for one cycle (all wires of a
// class share one arrival time). Mirrors DoubleSamplingFlop::clock.
enum class Verdict : std::uint8_t {
  held,          // arrival <= 0: latches keep their value, no line update
  clean,         // captured by the main flop
  corrected,     // main missed, shadow caught it: Error_L asserted
  shadow_failed  // silent corruption (late arrival or short-path race)
};

// Shield-delimited wire groups. A group's wires interact with nothing
// outside it (its edges border shields), so for tabulatable widths the
// whole group's cycle contribution is precomputed over all (prev, cur)
// bit combinations. Same-width groups are structurally identical and
// share one table block. A group lives at `start` within the (possibly
// multi-lane) bus word; extraction/deposit straddle the 64-bit lane
// boundary transparently. Energy accounting is group-wise in EVERY
// engine/kernel (one sub-accumulator per group, groups summed in order)
// so all paths agree bit for bit. Shared between the single-point
// BusSimulator and the multi-point engine so both tabulate identically.
struct WireGroup {
  int start = 0;
  int width = 0;
  std::size_t table_offset = 0;  // into the combo_* arrays
};

struct GroupLayout {
  static constexpr int kMaxTableWidth = 6;  // 4^6 combos per table block

  std::vector<WireGroup> groups;
  std::size_t total_combos = 0;  // summed block sizes (distinct widths)
  // False when some group is wider than kMaxTableWidth; combo tables are
  // then not built and every cycle takes the per-wire general kernel.
  bool tabulatable = false;

  static GroupLayout build(const interconnect::BusDesign& design);
};

}  // namespace detail

struct CycleResult {
  bool error = false;           // bank error signal (>=1 flop corrected)
  bool shadow_failure = false;  // unrecoverable capture miss
  double bus_energy = 0.0;      // wire switching + repeater leakage (J)
  double overhead_energy = 0.0; // flop clocking, detection, recovery (J)
  double worst_delay = 0.0;     // max arrival across wires (s)
};

struct RunningTotals {
  std::uint64_t cycles = 0;
  std::uint64_t errors = 0;
  std::uint64_t shadow_failures = 0;
  double bus_energy = 0.0;
  double overhead_energy = 0.0;

  double total_energy() const { return bus_energy + overhead_energy; }
  double error_rate() const {
    return cycles ? static_cast<double>(errors) / static_cast<double>(cycles) : 0.0;
  }
};

class BusSimulator {
 public:
  // `table` must outlive the simulator. The operating environment (process
  // corner, temperature, IR drop) is set at construction and only moves
  // under an explicit drift schedule (set_environment); the supply is
  // mutable per cycle (that is what the DVS loop controls).
  BusSimulator(const interconnect::BusDesign& design, const lut::DelayEnergyTable& table,
               tech::PvtCorner environment,
               razor::RecoveryCostModel recovery = {});

  // Change the regulator output voltage. Cheap when unchanged; on change,
  // re-interpolates the per-class slice and re-derives the per-class
  // capture verdicts (the per-cycle hot path is pure table reads).
  void set_supply(double volts);
  double supply() const { return supply_; }

  // Change the operating environment (process, temperature, IR drop) of a
  // live simulator — the drift campaigns' corner-modulating hook
  // (drift::Schedule). Cheap when the corner is unchanged; on change the
  // operating point is re-derived exactly as a supply change would, and
  // receiver state plus totals carry over untouched.
  void set_environment(const tech::PvtCorner& environment);

  // Select the cycle engine. Switching is legal mid-run: the receiver
  // state carries over (the engines share it by construction).
  void set_engine_mode(EngineMode mode);
  EngineMode engine_mode() const { return mode_; }

  // Optional cycle-to-cycle arrival-time jitter (clock + supply noise),
  // applied common-mode to all wires each cycle. Zero disables (default;
  // keeps unit tests deterministic). Experiments use a few ps, which
  // smooths the otherwise pattern-class-quantised error onset.
  void set_timing_jitter(double sigma_seconds, std::uint64_t seed = 0x7a5e11u);

  const interconnect::BusDesign& design() const { return design_; }
  const tech::PvtCorner& environment() const { return environment_; }

  // Drive the next word; returns this cycle's outcome.
  CycleResult step(const BusWord& word);

  // Drive `n` words through the active engine back to back and return the
  // totals accrued by this call (overall totals() advance as well). This
  // is the hot entry point: the bit-parallel engine keeps its accumulators
  // in registers for the whole span.
  RunningTotals run(const BusWord* words, std::size_t n);
  RunningTotals run(const std::vector<BusWord>& words) {
    return run(words.data(), words.size());
  }
  // Legacy 32-bit spans (tests and hand-rolled drivers): converted up
  // front, then identical to the BusWord path cycle for cycle.
  RunningTotals run(const std::uint32_t* words, std::size_t n);
  RunningTotals run(const std::vector<std::uint32_t>& words) {
    return run(words.data(), words.size());
  }
  // Drain a streaming trace (DESIGN.md §12) through a fixed block buffer
  // of `block_cycles` words: resident trace memory stays O(block) no
  // matter how long the stream runs, and because run() accumulates totals
  // with the same per-cycle operation sequence at any span split, the
  // result is bit-identical to one run() over the materialized words.
  // Rejects streams wider than the bus (the high lanes would be dropped).
  RunningTotals run(trace::TraceSource& source,
                    std::size_t block_cycles = trace::kDefaultBlockCycles);

  // Reset bus/flop state and totals (keeps the operating point and mode).
  void reset(const BusWord& initial_word = BusWord());

  const RunningTotals& totals() const { return totals_; }

  // Energy one cycle would consume at the CURRENT operating point if the
  // given word were driven — without mutating state. Used by tests.
  double peek_cycle_energy(const BusWord& word) const;

  // Reference energy per cycle of the conventional bus: same environment,
  // supply fixed at nominal. Used to normalise gains.
  static RunningTotals run_reference(const interconnect::BusDesign& design,
                                     const lut::DelayEnergyTable& table,
                                     tech::PvtCorner environment,
                                     const std::vector<BusWord>& words);
  static RunningTotals run_reference(const interconnect::BusDesign& design,
                                     const lut::DelayEnergyTable& table,
                                     tech::PvtCorner environment,
                                     const std::vector<std::uint32_t>& words);

 private:
  using Verdict = detail::Verdict;

  struct CycleOutcome {
    double dynamic_energy = 0.0;
    double worst_delay = 0.0;
    BusWord error_mask;
    BusWord shadow_mask;
    BusWord line_update;
  };

  void refresh_operating_point();
  Verdict classify_arrival(double arrival) const;

  void rebuild_group_tables();

  CycleResult step_reference(const BusWord& word);
  CycleResult step_bit_parallel(const BusWord& word);
  // Combo-table cycle kernel for jitter-free cycles (the common case).
  CycleOutcome table_kernel(const BusWord& prev, const BusWord& word) const;
  // Bit-parallel per-class kernel for jittered cycles: energy still comes
  // from the combo tables; verdicts are re-derived per present class.
  CycleOutcome jitter_kernel(const BusWord& prev, const BusWord& word,
                             const BusWord& line, double jitter) const;
  // Per-wire fallback for the cases the table kernels cannot serve: groups
  // too wide to tabulate, or receiver state diverged from the bus
  // (line != prev after a pathological arrival <= 0 hold).
  CycleOutcome general_kernel(const BusWord& prev, const BusWord& word,
                              const BusWord& line, double jitter);
  void run_bit_parallel(const BusWord* words, std::size_t n);
  void account_idle(CycleResult& out);

  const interconnect::BusDesign& design_;
  const lut::DelayEnergyTable& table_;
  tech::PvtCorner environment_;
  razor::RecoveryCostModel recovery_;
  tech::LeakageModel leakage_;
  WireClassifier classifier_;
  razor::FlopBank bank_;
  razor::FlopTiming timing_;
  EngineMode mode_ = EngineMode::bit_parallel;

  double supply_ = 0.0;
  lut::TableSlice slice_{};
  double leakage_energy_per_cycle_ = 0.0;
  double energy_scale_ = 1.0;  // rail-vs-effective voltage correction (IR drop)
  double cycle_overhead_ = 0.0;
  double error_overhead_ = 0.0;
  double jitter_sigma_ = 0.0;
  Rng jitter_rng_{0x7a5e11u};

  // Per-class operating-point precomputation (refreshed on supply change):
  // energy already scaled to the rail voltage, the class arrival time at
  // zero jitter, and the zero-jitter capture verdict. With jitter enabled
  // the verdict is re-derived per cycle from arrival = delay + jitter with
  // exactly the comparison chain of DoubleSamplingFlop::clock, so the
  // engines stay bit-identical (the verdict flips where delay + jitter
  // crosses a capture limit).
  double scaled_energy_[lut::PatternClass::kCount] = {};
  double class_delay_[lut::PatternClass::kCount] = {};
  Verdict class_verdict_[lut::PatternClass::kCount] = {};

  // Shield-group structure (see detail::GroupLayout). Combo tables are
  // built per operating point when layout_.tabulatable.
  detail::GroupLayout layout_;
  // False when some tabulated verdict is "held" (arrival <= 0), which the
  // toggle-update table path cannot express; zero-jitter cycles then go
  // through the per-class kernel instead.
  bool combo_zero_jitter_ok_ = true;
  std::vector<double> combo_energy_;
  std::vector<double> combo_worst_;
  std::vector<std::uint8_t> combo_error_;
  std::vector<std::uint8_t> combo_shadow_;

  BusWord prev_word_;
  // Value stably latched on each wire as the receiver sees it. Equals
  // prev_word_ except in the pathological arrival<=0 case (the flop keeps
  // its old value while the bus has moved on) — tracked separately so both
  // engines agree even there.
  BusWord line_word_;
  RunningTotals totals_;
  std::vector<double> arrivals_;
  std::vector<int> classes_;
};

// ------------------------------------------------------------- multi-point

// One operating point of a batched run: the regulator rail voltage plus
// the process/temperature/IR environment — exactly the axes BusSimulator
// fixes per instance (set_supply + the constructor's PvtCorner).
struct OperatingPoint {
  double supply = 0.0;
  tech::PvtCorner environment{};
};

struct MultiPointConfig {
  razor::RecoveryCostModel recovery{};
  // Common-mode arrival jitter, as BusSimulator::set_timing_jitter: one
  // draw per non-idle cycle. The draw sequence depends only on the trace
  // (which cycles are idle), never on the operating point, so a single
  // shared generator reproduces what N scalar shards — each re-seeded
  // with the same seed — would each draw.
  double timing_jitter_sigma = 0.0;
  std::uint64_t jitter_seed = 0x7a5e11u;
  BusWord initial_word{};
};

// Evaluates N operating points against ONE trace in a single pass
// (DESIGN.md §13). Per-cycle pattern work (idle detection, group combo
// indices, class masks) is shared across points; the per-point
// delay/energy/verdict evaluation is laid out structure-of-arrays — the
// combo tables hold rows of N energies/error-bytes per (prev, cur)
// combination — and the hot zero-jitter path reduces those rows with the
// util/simd.hpp kernels. Per-point totals are bit-identical to running
// BusSimulator (bit_parallel) once per point over the same trace: the
// per-cycle IEEE operation sequence of every point is preserved exactly
// (group-order energy sub-sums, one `+= dynamic + leakage` per cycle,
// the scalar engine's own per-point kernel selection).
class MultiPointEngine {
 public:
  // `design` and `table` must outlive the engine. Throws on an empty
  // point list or a non-positive supply.
  MultiPointEngine(const interconnect::BusDesign& design,
                   const lut::DelayEnergyTable& table,
                   const std::vector<OperatingPoint>& points,
                   const MultiPointConfig& config = {});

  std::size_t n_points() const { return n_points_; }

  // Drive `n` words through every point. Calls accumulate: spans may be
  // split arbitrarily (streamed blocks, multiple traces back to back)
  // with bit-identical totals, same contract as BusSimulator::run.
  void run(const BusWord* words, std::size_t n);
  void run(const std::vector<BusWord>& words) { run(words.data(), words.size()); }
  // Drain a streaming trace through a fixed block buffer (same width
  // check and block semantics as BusSimulator::run(TraceSource&)).
  void run(trace::TraceSource& source,
           std::size_t block_cycles = trace::kDefaultBlockCycles);

  // Totals of one point (cycles are shared: every point saw every cycle).
  RunningTotals totals(std::size_t point) const;
  std::vector<RunningTotals> all_totals() const;

  // Reset bus/receiver state and totals (keeps the operating points).
  void reset(const BusWord& initial_word = BusWord());

 private:
  void build_point(std::size_t p, const OperatingPoint& point);
  void fast_cycle(const BusWord& word);
  void mixed_cycle(const BusWord& word, double jitter);

  const interconnect::BusDesign& design_;
  const lut::DelayEnergyTable& table_;
  tech::LeakageModel leakage_;
  WireClassifier classifier_;
  razor::FlopTiming timing_;
  detail::GroupLayout layout_;

  std::size_t n_points_ = 0;
  std::size_t stride_ = 0;  // n_points_ padded to the SIMD row granule
  double cycle_overhead_ = 0.0;
  double cycle_error_overhead_ = 0.0;  // cycle + error overhead, pre-added
  double jitter_sigma_ = 0.0;
  Rng jitter_rng_{0x7a5e11u};

  // Per-point operating tables, structure-of-arrays. Row-major over the
  // point index: combo_* arrays hold one stride_-wide row per (group
  // table offset, prev, cur) combination so the fast path reduces whole
  // rows; the per-class arrays are point-major ([p * kCount + cls]) since
  // the scalar fallback kernels walk one point at a time.
  std::vector<double> leak_;                   // [stride_]
  std::vector<double> combo_energy_;           // [combo][stride_]
  std::vector<std::uint8_t> combo_error_;      // [combo][stride_]
  std::vector<std::uint8_t> combo_shadow_;     // [combo][stride_]
  std::vector<double> scaled_energy_;          // [point][kCount]
  std::vector<double> class_delay_;            // [point][kCount]
  std::vector<detail::Verdict> class_verdict_; // [point][kCount]
  std::vector<std::uint8_t> combo_ok_;         // per point: zero-jitter ok
  bool all_combo_ok_ = false;

  // Cycle state. While every point rides the fast table path their
  // receiver lines are all equal to prev & bits_mask, so line_ is kept
  // STALE (all_fast_ set) and materialized only when a cycle leaves the
  // fast path; afterwards per-point lines may diverge exactly as N scalar
  // engines' would.
  BusWord prev_word_;
  std::vector<BusWord> line_;
  bool all_fast_ = false;
  std::uint64_t cycles_ = 0;
  std::vector<std::uint64_t> errors_;           // [n_points_]
  std::vector<std::uint64_t> shadow_failures_;  // [n_points_]
  std::vector<double> bus_energy_;              // [stride_]
  std::vector<double> overhead_energy_;         // [stride_]

  // Per-cycle scratch rows (fast path).
  std::vector<double> dyn_;
  std::vector<std::uint8_t> errb_;
  std::vector<std::uint8_t> shadowb_;
  std::vector<int> classes_;
};

// One-shot convenience wrappers: build the engine, run the trace, return
// per-point totals in point order.
std::vector<RunningTotals> multi_point_run(const interconnect::BusDesign& design,
                                           const lut::DelayEnergyTable& table,
                                           const std::vector<OperatingPoint>& points,
                                           const BusWord* words, std::size_t n,
                                           const MultiPointConfig& config = {});
std::vector<RunningTotals> multi_point_run(const interconnect::BusDesign& design,
                                           const lut::DelayEnergyTable& table,
                                           const std::vector<OperatingPoint>& points,
                                           const std::vector<BusWord>& words,
                                           const MultiPointConfig& config = {});
std::vector<RunningTotals> multi_point_run(
    const interconnect::BusDesign& design, const lut::DelayEnergyTable& table,
    const std::vector<OperatingPoint>& points, trace::TraceSource& source,
    const MultiPointConfig& config = {},
    std::size_t block_cycles = trace::kDefaultBlockCycles);

}  // namespace razorbus::bus

// Cycle-level simulator of the DVS bus with double-sampling receivers.
//
// Each cycle a 32-bit word is driven onto the bus. Per wire, the simulator
// classifies the switching pattern, looks up the in-to-out delay and the
// supply energy from the characterised tables, clocks the Razor flop bank,
// and accrues leakage and flop/recovery overheads. This is the engine
// behind every experiment: static voltage sweeps (Fig. 4/5), the oracle
// distribution study (Fig. 6), and closed-loop DVS runs (Table 1, Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "bus/classify.hpp"
#include "interconnect/bus_design.hpp"
#include "lut/table.hpp"
#include "razor/bank.hpp"
#include "tech/corner.hpp"
#include "tech/leakage.hpp"
#include "util/rng.hpp"

namespace razorbus::bus {

struct CycleResult {
  bool error = false;           // bank error signal (>=1 flop corrected)
  bool shadow_failure = false;  // unrecoverable capture miss
  double bus_energy = 0.0;      // wire switching + repeater leakage (J)
  double overhead_energy = 0.0; // flop clocking, detection, recovery (J)
  double worst_delay = 0.0;     // max arrival across wires (s)
};

struct RunningTotals {
  std::uint64_t cycles = 0;
  std::uint64_t errors = 0;
  std::uint64_t shadow_failures = 0;
  double bus_energy = 0.0;
  double overhead_energy = 0.0;

  double total_energy() const { return bus_energy + overhead_energy; }
  double error_rate() const {
    return cycles ? static_cast<double>(errors) / static_cast<double>(cycles) : 0.0;
  }
};

class BusSimulator {
 public:
  // `table` must outlive the simulator. The operating environment (process
  // corner, temperature, IR drop) is fixed per run; the supply is mutable
  // (that is what the DVS loop controls).
  BusSimulator(const interconnect::BusDesign& design, const lut::DelayEnergyTable& table,
               tech::PvtCorner environment,
               razor::RecoveryCostModel recovery = {});

  // Change the regulator output voltage. Cheap when unchanged; on change,
  // re-interpolates the per-class slice (the per-cycle hot path is pure
  // table reads).
  void set_supply(double volts);
  double supply() const { return supply_; }

  // Optional cycle-to-cycle arrival-time jitter (clock + supply noise),
  // applied common-mode to all wires each cycle. Zero disables (default;
  // keeps unit tests deterministic). Experiments use a few ps, which
  // smooths the otherwise pattern-class-quantised error onset.
  void set_timing_jitter(double sigma_seconds, std::uint64_t seed = 0x7a5e11u);

  const interconnect::BusDesign& design() const { return design_; }
  const tech::PvtCorner& environment() const { return environment_; }

  // Drive the next word; returns this cycle's outcome.
  CycleResult step(std::uint32_t word);

  // Reset bus/flop state and totals (keeps the operating point).
  void reset(std::uint32_t initial_word = 0);

  const RunningTotals& totals() const { return totals_; }

  // Energy one cycle would consume at the CURRENT operating point if the
  // given word were driven — without mutating state. Used by tests.
  double peek_cycle_energy(std::uint32_t word) const;

  // Reference energy per cycle of the conventional bus: same environment,
  // supply fixed at nominal. Used to normalise gains.
  static RunningTotals run_reference(const interconnect::BusDesign& design,
                                     const lut::DelayEnergyTable& table,
                                     tech::PvtCorner environment,
                                     const std::vector<std::uint32_t>& words);

 private:
  void refresh_operating_point();
  double wire_energy(int cls) const;

  const interconnect::BusDesign& design_;
  const lut::DelayEnergyTable& table_;
  tech::PvtCorner environment_;
  razor::RecoveryCostModel recovery_;
  tech::LeakageModel leakage_;
  WireClassifier classifier_;
  razor::FlopBank bank_;

  double supply_ = 0.0;
  lut::TableSlice slice_{};
  double leakage_energy_per_cycle_ = 0.0;
  double energy_scale_ = 1.0;  // rail-vs-effective voltage correction (IR drop)
  double jitter_sigma_ = 0.0;
  Rng jitter_rng_{0x7a5e11u};

  std::uint32_t prev_word_ = 0;
  RunningTotals totals_;
  std::vector<double> arrivals_;
  std::vector<int> classes_;
};

}  // namespace razorbus::bus

#include "bus/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/bits.hpp"
#include "util/simd.hpp"
#include "util/units.hpp"

namespace razorbus::bus {

namespace {

razor::FlopTiming make_timing(const interconnect::BusDesign& design) {
  razor::FlopTiming t{};
  t.main_capture_limit = design.main_capture_limit();
  t.shadow_capture_limit = design.shadow_capture_limit();
  // Short paths must not race past the delayed shadow clock. Common-mode
  // jitter moves data and clock together, so leave a small allowance
  // rather than comparing against the raw shadow delay. Clamped at zero
  // (= check disabled) so a small shadow_delay_fraction cannot produce a
  // negative limit that would spuriously flag every fast arrival.
  t.min_path_limit =
      std::max(0.0, design.shadow_delay_fraction * design.clock_period() - 15e-12);
  return t;
}

// Branch order mirrors DoubleSamplingFlop::clock exactly; keeping the
// comparison chain identical across every engine is what makes them all
// bit-compatible.
detail::Verdict classify_arrival_for(const razor::FlopTiming& timing, double arrival) {
  using detail::Verdict;
  if (arrival <= 0.0) return Verdict::held;
  if (timing.min_path_limit > 0.0 && arrival < timing.min_path_limit)
    return Verdict::shadow_failed;
  if (arrival <= timing.main_capture_limit) return Verdict::clean;
  if (arrival <= timing.shadow_capture_limit) return Verdict::corrected;
  return Verdict::shadow_failed;
}

// One (prev, cur) combination of one shield group at one operating point:
// the per-bit chain in ascending bit order — the exact operation sequence
// every engine uses for this group's energy sub-sum — plus the zero-jitter
// wire verdicts folded into error/shadow masks. `any_held` flags the
// arrival <= 0 case the toggle-update table path cannot express. Shared by
// the single-point and multi-point table builders so their tables agree
// bit for bit by construction.
struct ComboCell {
  double energy = 0.0;
  double worst = 0.0;
  std::uint8_t error_mask = 0;
  std::uint8_t shadow_mask = 0;
  bool any_held = false;
};

ComboCell compute_combo(int w, std::uint32_t pm, std::uint32_t cm,
                        const double* scaled_energy, const double* class_delay,
                        const detail::Verdict* class_verdict) {
  using detail::Verdict;
  using lut::NeighborActivity;
  using lut::PatternClass;
  ComboCell cell;
  for (int b = 0; b < w; ++b) {
    const auto victim = lut::classify_victim((pm >> b) & 1u, (cm >> b) & 1u);
    const NeighborActivity left =
        b == 0 ? NeighborActivity::shield
               : lut::classify_neighbor((pm >> (b - 1)) & 1u, (cm >> (b - 1)) & 1u);
    const NeighborActivity right =
        b == w - 1 ? NeighborActivity::shield
                   : lut::classify_neighbor((pm >> (b + 1)) & 1u, (cm >> (b + 1)) & 1u);
    const int cls = PatternClass::encode(victim, left, right);
    cell.energy += scaled_energy[cls];
    const double d = class_delay[cls];
    if (std::isnan(d)) continue;
    if (d > cell.worst) cell.worst = d;
    // A switching victim toggles by definition, so at zero jitter
    // (line == prev) the wire is active and the class verdict is the
    // wire verdict.
    switch (class_verdict[cls]) {
      case Verdict::held:
        cell.any_held = true;
        break;
      case Verdict::clean:
        break;
      case Verdict::corrected:
        cell.error_mask |= static_cast<std::uint8_t>(1u << b);
        break;
      case Verdict::shadow_failed:
        cell.shadow_mask |= static_cast<std::uint8_t>(1u << b);
        break;
    }
  }
  return cell;
}

}  // namespace

namespace detail {

GroupLayout GroupLayout::build(const interconnect::BusDesign& design) {
  // A group is a maximal run of signal wires with no internal shield; its
  // edges border shields (the layout guarantees shields at both bus
  // edges), so nothing outside a group influences its wires. Same-width
  // groups are structurally identical and share one combo-table block.
  GroupLayout layout;
  const int n = design.n_bits;
  std::size_t offsets[kMaxTableWidth + 1];
  std::fill(std::begin(offsets), std::end(offsets), static_cast<std::size_t>(-1));
  layout.tabulatable = true;

  int i = 0;
  while (i < n) {
    int j = i + 1;
    while (j < n && design.left_neighbor(j) != interconnect::NeighborKind::shield) ++j;
    WireGroup g;
    g.start = i;
    g.width = j - i;
    if (g.width > kMaxTableWidth) {
      layout.tabulatable = false;
    } else {
      if (offsets[g.width] == static_cast<std::size_t>(-1)) {
        offsets[g.width] = layout.total_combos;
        layout.total_combos += static_cast<std::size_t>(1) << (2 * g.width);
      }
      g.table_offset = offsets[g.width];
    }
    layout.groups.push_back(g);
    i = j;
  }
  return layout;
}

}  // namespace detail

BusSimulator::BusSimulator(const interconnect::BusDesign& design,
                           const lut::DelayEnergyTable& table,
                           tech::PvtCorner environment,
                           razor::RecoveryCostModel recovery)
    : design_(design),
      table_(table),
      environment_(environment),
      recovery_(recovery),
      leakage_(design.node),
      classifier_(design),
      bank_(design.n_bits, make_timing(design)),
      timing_(make_timing(design)),
      arrivals_(static_cast<std::size_t>(design.n_bits), -1.0),
      classes_(static_cast<std::size_t>(design.n_bits), 0) {
  design_.validate();
  if (design_.repeater_size <= 0.0)
    throw std::invalid_argument("BusSimulator: repeaters not sized");
  cycle_overhead_ = recovery_.cycle_overhead(design_.n_bits);
  error_overhead_ = recovery_.error_overhead(design_.n_bits);
  layout_ = detail::GroupLayout::build(design_);
  if (layout_.tabulatable) {
    combo_energy_.assign(layout_.total_combos, 0.0);
    combo_worst_.assign(layout_.total_combos, 0.0);
    combo_error_.assign(layout_.total_combos, 0);
    combo_shadow_.assign(layout_.total_combos, 0);
  }
  set_supply(design_.node.vdd_nominal);
}

void BusSimulator::set_supply(double volts) {
  if (volts <= 0.0) throw std::invalid_argument("BusSimulator: non-positive supply");
  // Tolerant compare (kSupplyToleranceVolts, shared with the regulator):
  // the regulator accumulates 20 mV steps in floating point, so "the same
  // voltage" can arrive a few ULPs away from the value we cached. A
  // sub-nanovolt difference never changes the interpolated tables, while
  // an exact != would force a needless operating-point refresh on every
  // closed-loop segment.
  if (supply_ > 0.0 && std::fabs(volts - supply_) <= kSupplyToleranceVolts) return;
  supply_ = volts;
  refresh_operating_point();
}

void BusSimulator::set_environment(const tech::PvtCorner& environment) {
  // Exact compare on purpose: drift schedules quantise temperature to the
  // characterised axis and re-derive the same corner for most windows, so
  // the common case is bit-equality and an early return.
  if (environment == environment_) return;
  environment_ = environment;
  refresh_operating_point();
}

std::string to_string(EngineMode mode) {
  switch (mode) {
    case EngineMode::bit_parallel:
      return "bit_parallel";
    case EngineMode::reference:
      return "reference";
    case EngineMode::simd:
      return "simd";
  }
  return "bit_parallel";
}

EngineMode engine_mode_from_string(const std::string& name) {
  if (name == "bit_parallel") return EngineMode::bit_parallel;
  if (name == "reference") return EngineMode::reference;
  if (name == "simd") return EngineMode::simd;
  throw std::invalid_argument("unknown engine mode '" + name +
                              "' (expected bit_parallel, reference or simd)");
}

void BusSimulator::set_engine_mode(EngineMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  // The engines share receiver state through line_word_: the reference
  // engine re-seeds its flop bank from it, the bit-parallel engine reads
  // it directly. Counters and totals carry over untouched.
  if (mode_ == EngineMode::reference)
    bank_ = razor::FlopBank(design_.n_bits, timing_, line_word_);
}

BusSimulator::Verdict BusSimulator::classify_arrival(double arrival) const {
  return classify_arrival_for(timing_, arrival);
}

void BusSimulator::refresh_operating_point() {
  const double v_eff = environment_.effective_supply(supply_);
  slice_ = table_.slice(environment_.process, environment_.temp_c, v_eff);
  // The tables are characterised at the drooped driver voltage; the charge
  // is still drawn from the un-drooped supply rail.
  energy_scale_ = supply_ / v_eff;

  const double n_drivers =
      static_cast<double>(design_.n_bits) * static_cast<double>(design_.n_segments);
  const double leak_current = leakage_.current(
      design_.repeater_size, environment_.process, environment_.temp_c, v_eff);
  leakage_energy_per_cycle_ = n_drivers * leak_current * supply_ * design_.clock_period();

  // Per-class precomputation: all wires of a class share one delay, so the
  // capture verdict (at zero jitter) and the rail-scaled energy are
  // functions of the operating point alone.
  for (int cls = 0; cls < lut::PatternClass::kCount; ++cls) {
    scaled_energy_[cls] = slice_.energy[cls] * energy_scale_;
    class_delay_[cls] = slice_.delay[cls];
    class_verdict_[cls] = std::isnan(class_delay_[cls])
                              ? Verdict::held
                              : classify_arrival(class_delay_[cls]);
  }
  if (layout_.tabulatable) rebuild_group_tables();
}

void BusSimulator::rebuild_group_tables() {
  combo_zero_jitter_ok_ = true;
  bool built[detail::GroupLayout::kMaxTableWidth + 1] = {};
  for (const auto& g : layout_.groups) {
    if (built[g.width]) continue;
    built[g.width] = true;
    const int w = g.width;
    const std::uint32_t combos = 1u << w;
    for (std::uint32_t pm = 0; pm < combos; ++pm) {
      for (std::uint32_t cm = 0; cm < combos; ++cm) {
        const ComboCell cell =
            compute_combo(w, pm, cm, scaled_energy_, class_delay_, class_verdict_);
        // An arrival <= 0 verdict in any reachable combo means the wire
        // would silently keep its old value, which the toggle-update
        // table path cannot express — route such operating points
        // through the per-class kernel instead.
        if (cell.any_held) combo_zero_jitter_ok_ = false;
        const std::size_t idx = g.table_offset + ((pm << w) | cm);
        combo_energy_[idx] = cell.energy;
        combo_worst_[idx] = cell.worst;
        combo_error_[idx] = cell.error_mask;
        combo_shadow_[idx] = cell.shadow_mask;
      }
    }
  }
}

void BusSimulator::set_timing_jitter(double sigma_seconds, std::uint64_t seed) {
  if (sigma_seconds < 0.0) throw std::invalid_argument("negative jitter sigma");
  jitter_sigma_ = sigma_seconds;
  jitter_rng_ = Rng(seed);
}

void BusSimulator::account_idle(CycleResult& out) {
  // Idle bus: nothing switches, no flop can err, no dynamic energy.
  out.bus_energy = leakage_energy_per_cycle_;
  out.overhead_energy = cycle_overhead_;
  ++totals_.cycles;
  totals_.bus_energy += out.bus_energy;
  totals_.overhead_energy += out.overhead_energy;
}

CycleResult BusSimulator::step(const BusWord& word) {
  // simd is a driver-level scheduling mode; on a single simulator it IS
  // the bit-parallel engine.
  return mode_ == EngineMode::reference ? step_reference(word)
                                        : step_bit_parallel(word);
}

// --------------------------------------------------------------- reference

CycleResult BusSimulator::step_reference(const BusWord& word) {
  CycleResult out;

  if (word == prev_word_) {
    bank_.tick_hold();
    account_idle(out);
    return out;
  }

  classifier_.classify_all(prev_word_, word, classes_.data());
  const double jitter =
      jitter_sigma_ > 0.0 ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;

  double worst = 0.0;
  for (int bit = 0; bit < classifier_.n_bits(); ++bit) {
    const double d = slice_.delay[classes_[static_cast<std::size_t>(bit)]];
    if (std::isnan(d)) {
      arrivals_[static_cast<std::size_t>(bit)] = -1.0;
    } else {
      const double arrival = d + jitter;
      arrivals_[static_cast<std::size_t>(bit)] = arrival;
      if (arrival > worst) worst = arrival;
    }
  }
  // Group-wise energy accounting (one sub-accumulator per shield group,
  // groups summed in order): the exact operation sequence of the
  // bit-parallel engine's precomputed group tables, so the engines'
  // energy totals match bit for bit.
  double dynamic_energy = 0.0;
  for (const auto& g : layout_.groups) {
    double sub = 0.0;
    for (int bit = g.start; bit < g.start + g.width; ++bit)
      sub += scaled_energy_[classes_[static_cast<std::size_t>(bit)]];
    dynamic_energy += sub;
  }

  const razor::BankCycleResult bank = bank_.clock(word, arrivals_);
  line_word_ = bank.captured;
  out.error = bank.error;
  out.shadow_failure = bank.shadow_failure;
  out.worst_delay = worst;
  out.bus_energy = dynamic_energy + leakage_energy_per_cycle_;
  out.overhead_energy = cycle_overhead_;
  if (bank.error) out.overhead_energy += error_overhead_;

  prev_word_ = word;
  ++totals_.cycles;
  if (out.error) ++totals_.errors;
  if (out.shadow_failure) ++totals_.shadow_failures;
  totals_.bus_energy += out.bus_energy;
  totals_.overhead_energy += out.overhead_energy;
  return out;
}

// ------------------------------------------------------------ bit-parallel

BusSimulator::CycleOutcome BusSimulator::table_kernel(const BusWord& prev,
                                                      const BusWord& word) const {
  // Jitter-free, receiver in sync: the whole cycle is one lookup per
  // shield group. Every toggling wire captures (cleanly or not), so the
  // line update is simply the toggle mask.
  CycleOutcome out;
  for (const auto& g : layout_.groups) {
    const std::uint64_t pm = prev.extract(g.start, g.width);
    const std::uint64_t cm = word.extract(g.start, g.width);
    const std::size_t idx =
        g.table_offset + static_cast<std::size_t>((pm << g.width) | cm);
    out.dynamic_energy += combo_energy_[idx];
    if (combo_worst_[idx] > out.worst_delay) out.worst_delay = combo_worst_[idx];
    out.error_mask |= BusWord(combo_error_[idx]) << g.start;
    out.shadow_mask |= BusWord(combo_shadow_[idx]) << g.start;
  }
  out.line_update = (prev ^ word) & classifier_.bits_mask();
  return out;
}

BusSimulator::CycleOutcome BusSimulator::jitter_kernel(const BusWord& prev,
                                                       const BusWord& word,
                                                       const BusWord& line,
                                                       double jitter) const {
  CycleOutcome out;
  // Energy and the per-group sub-sum order are jitter-independent: reuse
  // the combo tables.
  for (const auto& g : layout_.groups) {
    const std::uint64_t pm = prev.extract(g.start, g.width);
    const std::uint64_t cm = word.extract(g.start, g.width);
    out.dynamic_energy +=
        combo_energy_[g.table_offset + static_cast<std::size_t>((pm << g.width) | cm)];
  }

  // Verdicts shift with the common-mode jitter: re-derive them per present
  // switching class (all wires of a class share one arrival), comparing
  // arrival = delay + jitter with exactly the flop's comparison chain.
  const ClassMaskSet s = classifier_.masks(prev, word);
  const BusWord flop_toggle = word ^ line;
  for (int v = 0; v < 2; ++v) {  // rise, fall: the switching victims
    const BusWord vm = s.victim[v];
    if (!vm.any()) continue;
    for (int l = 0; l < 4; ++l) {
      const BusWord vl = vm & s.left[l];
      if (!vl.any()) continue;
      for (int r = 0; r < 4; ++r) {
        const BusWord mask = vl & s.right[r];
        if (!mask.any()) continue;
        const int cls = (v << 4) | (l << 2) | r;
        const double arrival = class_delay_[cls] + jitter;
        if (arrival > out.worst_delay) out.worst_delay = arrival;
        const BusWord active = mask & flop_toggle;
        if (!active.any()) continue;
        switch (classify_arrival(arrival)) {
          case Verdict::held:
            break;
          case Verdict::clean:
            out.line_update |= active;
            break;
          case Verdict::corrected:
            out.error_mask |= active;
            out.line_update |= active;
            break;
          case Verdict::shadow_failed:
            out.shadow_mask |= active;
            out.line_update |= active;
            break;
        }
      }
    }
  }
  return out;
}

BusSimulator::CycleOutcome BusSimulator::general_kernel(const BusWord& prev,
                                                        const BusWord& word,
                                                        const BusWord& line,
                                                        double jitter) {
  // Per-wire fallback for untabulatable layouts (a shield group wider than
  // kMaxTableWidth): classify every wire, keep the group-wise energy
  // accounting, and apply the class verdict per wire.
  CycleOutcome out;
  classifier_.classify_all(prev, word, classes_.data());
  const BusWord flop_toggle = word ^ line;
  for (const auto& g : layout_.groups) {
    double sub = 0.0;
    for (int bit = g.start; bit < g.start + g.width; ++bit) {
      const int cls = classes_[static_cast<std::size_t>(bit)];
      sub += scaled_energy_[cls];
      const double d = class_delay_[cls];
      if (std::isnan(d)) continue;
      const double arrival = d + jitter;
      if (arrival > out.worst_delay) out.worst_delay = arrival;
      if (!flop_toggle.test(bit)) continue;
      const BusWord wire = BusWord(1) << bit;
      switch (classify_arrival(arrival)) {
        case Verdict::held:
          break;
        case Verdict::clean:
          out.line_update |= wire;
          break;
        case Verdict::corrected:
          out.error_mask |= wire;
          out.line_update |= wire;
          break;
        case Verdict::shadow_failed:
          out.shadow_mask |= wire;
          out.line_update |= wire;
          break;
      }
    }
    out.dynamic_energy += sub;
  }
  return out;
}

CycleResult BusSimulator::step_bit_parallel(const BusWord& word) {
  CycleResult out;

  if (word == prev_word_) {
    account_idle(out);
    return out;
  }

  const double jitter =
      jitter_sigma_ > 0.0 ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;
  const bool in_sync = ((line_word_ ^ prev_word_) & classifier_.bits_mask()).none();
  CycleOutcome k;
  if (!layout_.tabulatable)
    k = general_kernel(prev_word_, word, line_word_, jitter);
  // razorlint: allow(float-eq): exact 0.0 marks "no jitter drawn this cycle";
  // the combo-table fast path is only valid for that exact case (DESIGN.md §5).
  else if (jitter == 0.0 && in_sync && combo_zero_jitter_ok_)
    k = table_kernel(prev_word_, word);
  else
    k = jitter_kernel(prev_word_, word, line_word_, jitter);

  line_word_ = (line_word_ & ~k.line_update) | (word & k.line_update);
  out.error = k.error_mask.any();
  out.shadow_failure = k.shadow_mask.any();
  out.worst_delay = k.worst_delay;
  out.bus_energy = k.dynamic_energy + leakage_energy_per_cycle_;
  out.overhead_energy = cycle_overhead_;
  if (out.error) out.overhead_energy += error_overhead_;

  prev_word_ = word;
  ++totals_.cycles;
  if (out.error) ++totals_.errors;
  if (out.shadow_failure) ++totals_.shadow_failures;
  totals_.bus_energy += out.bus_energy;
  totals_.overhead_energy += out.overhead_energy;
  return out;
}

void BusSimulator::run_bit_parallel(const BusWord* words, std::size_t n) {
  // Totals accumulate in registers across the whole span; the per-cycle
  // operation sequence (one `+= dynamic + leakage` per cycle, etc.) is
  // kept identical to step(), so batching never changes a single bit.
  std::uint64_t cycles = totals_.cycles;
  std::uint64_t errors = totals_.errors;
  std::uint64_t shadow_failures = totals_.shadow_failures;
  double bus_energy = totals_.bus_energy;
  double overhead_energy = totals_.overhead_energy;
  BusWord prev = prev_word_;
  BusWord line = line_word_;

  const double leak = leakage_energy_per_cycle_;
  const double cycle_ovh = cycle_overhead_;
  const double error_ovh = error_overhead_;
  const bool jitter_on = jitter_sigma_ > 0.0;
  const BusWord bits_mask = classifier_.bits_mask();

  for (std::size_t i = 0; i < n; ++i) {
    const BusWord word = words[i];
    if (word == prev) {
      ++cycles;
      bus_energy += leak;
      overhead_energy += cycle_ovh;
      continue;
    }
    const double jitter = jitter_on ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;
    CycleOutcome k;
    if (!layout_.tabulatable)
      k = general_kernel(prev, word, line, jitter);
    // razorlint: allow(float-eq): exact 0.0 marks "no jitter drawn this cycle";
    // the table path is only valid for that exact case (DESIGN.md §5).
    else if (jitter == 0.0 && ((line ^ prev) & bits_mask).none() && combo_zero_jitter_ok_)
      k = table_kernel(prev, word);
    else
      k = jitter_kernel(prev, word, line, jitter);

    line = (line & ~k.line_update) | (word & k.line_update);
    prev = word;
    ++cycles;
    const bool error = k.error_mask.any();
    if (error) ++errors;
    if (k.shadow_mask.any()) ++shadow_failures;
    bus_energy += k.dynamic_energy + leak;
    double ovh = cycle_ovh;
    if (error) ovh += error_ovh;
    overhead_energy += ovh;
  }

  totals_.cycles = cycles;
  totals_.errors = errors;
  totals_.shadow_failures = shadow_failures;
  totals_.bus_energy = bus_energy;
  totals_.overhead_energy = overhead_energy;
  prev_word_ = prev;
  line_word_ = line;
}

// ------------------------------------------------------------------ shared

RunningTotals BusSimulator::run(const BusWord* words, std::size_t n) {
  const RunningTotals before = totals_;
  if (mode_ == EngineMode::reference) {
    for (std::size_t i = 0; i < n; ++i) step_reference(words[i]);
  } else {
    run_bit_parallel(words, n);
  }
  RunningTotals delta;
  delta.cycles = totals_.cycles - before.cycles;
  delta.errors = totals_.errors - before.errors;
  delta.shadow_failures = totals_.shadow_failures - before.shadow_failures;
  delta.bus_energy = totals_.bus_energy - before.bus_energy;
  delta.overhead_energy = totals_.overhead_energy - before.overhead_energy;
  return delta;
}

RunningTotals BusSimulator::run(const std::uint32_t* words, std::size_t n) {
  const std::vector<BusWord> wide(words, words + n);
  return run(wide.data(), wide.size());
}

RunningTotals BusSimulator::run(trace::TraceSource& source, std::size_t block_cycles) {
  if (block_cycles == 0)
    throw std::invalid_argument("BusSimulator::run: block_cycles must be > 0");
  if (source.n_bits() > design_.n_bits)
    throw std::invalid_argument("BusSimulator::run: stream '" + source.name() +
                                "' is " + std::to_string(source.n_bits()) +
                                " bits wide but the bus has " +
                                std::to_string(design_.n_bits) + " wires");
  const RunningTotals before = totals_;
  std::vector<BusWord> buffer(block_cycles);
  for (;;) {
    const std::size_t n = source.next_block(buffer.data(), buffer.size());
    if (n == 0) break;
    run(buffer.data(), n);
  }
  RunningTotals delta;
  delta.cycles = totals_.cycles - before.cycles;
  delta.errors = totals_.errors - before.errors;
  delta.shadow_failures = totals_.shadow_failures - before.shadow_failures;
  delta.bus_energy = totals_.bus_energy - before.bus_energy;
  delta.overhead_energy = totals_.overhead_energy - before.overhead_energy;
  return delta;
}

void BusSimulator::reset(const BusWord& initial_word) {
  prev_word_ = initial_word;
  line_word_ = initial_word & classifier_.bits_mask();
  totals_ = RunningTotals{};
  bank_ = razor::FlopBank(design_.n_bits, timing_, initial_word);
}

double BusSimulator::peek_cycle_energy(const BusWord& word) const {
  // Per-group sub-sums, same accounting as the engines.
  double energy = leakage_energy_per_cycle_;
  if (word == prev_word_) return energy;
  for (const auto& g : layout_.groups) {
    double sub = 0.0;
    for (int bit = g.start; bit < g.start + g.width; ++bit)
      sub += slice_.energy[classifier_.classify(prev_word_, word, bit)] * energy_scale_;
    energy += sub;
  }
  return energy;
}

RunningTotals BusSimulator::run_reference(const interconnect::BusDesign& design,
                                          const lut::DelayEnergyTable& table,
                                          tech::PvtCorner environment,
                                          const std::vector<BusWord>& words) {
  BusSimulator sim(design, table, environment);
  sim.set_supply(design.node.vdd_nominal);
  sim.run(words.data(), words.size());
  return sim.totals();
}

RunningTotals BusSimulator::run_reference(const interconnect::BusDesign& design,
                                          const lut::DelayEnergyTable& table,
                                          tech::PvtCorner environment,
                                          const std::vector<std::uint32_t>& words) {
  return run_reference(design, table, environment,
                       std::vector<BusWord>(words.begin(), words.end()));
}

// ------------------------------------------------------------- multi-point

MultiPointEngine::MultiPointEngine(const interconnect::BusDesign& design,
                                   const lut::DelayEnergyTable& table,
                                   const std::vector<OperatingPoint>& points,
                                   const MultiPointConfig& config)
    : design_(design),
      table_(table),
      leakage_(design.node),
      classifier_(design),
      timing_(make_timing(design)),
      jitter_sigma_(config.timing_jitter_sigma),
      jitter_rng_(config.jitter_seed),
      classes_(static_cast<std::size_t>(design.n_bits), 0) {
  design_.validate();
  if (design_.repeater_size <= 0.0)
    throw std::invalid_argument("MultiPointEngine: repeaters not sized");
  if (points.empty())
    throw std::invalid_argument("MultiPointEngine: empty operating-point list");
  if (jitter_sigma_ < 0.0) throw std::invalid_argument("negative jitter sigma");

  cycle_overhead_ = config.recovery.cycle_overhead(design_.n_bits);
  cycle_error_overhead_ =
      cycle_overhead_ + config.recovery.error_overhead(design_.n_bits);
  layout_ = detail::GroupLayout::build(design_);

  n_points_ = points.size();
  // Rows padded to a fixed four-lane granule (the widest double vector in
  // util/simd.cpp); padding slots stay zero and never reach the totals.
  stride_ = (n_points_ + 3) & ~std::size_t{3};

  leak_.assign(stride_, 0.0);
  scaled_energy_.assign(n_points_ * lut::PatternClass::kCount, 0.0);
  class_delay_.assign(n_points_ * lut::PatternClass::kCount, 0.0);
  class_verdict_.assign(n_points_ * lut::PatternClass::kCount, detail::Verdict::held);
  combo_ok_.assign(n_points_, 1);
  if (layout_.tabulatable) {
    combo_energy_.assign(layout_.total_combos * stride_, 0.0);
    combo_error_.assign(layout_.total_combos * stride_, 0);
    combo_shadow_.assign(layout_.total_combos * stride_, 0);
  }
  for (std::size_t p = 0; p < n_points_; ++p) build_point(p, points[p]);
  all_combo_ok_ = layout_.tabulatable;
  for (std::size_t p = 0; p < n_points_; ++p)
    if (!combo_ok_[p]) all_combo_ok_ = false;

  line_.assign(n_points_, BusWord());
  errors_.assign(n_points_, 0);
  shadow_failures_.assign(n_points_, 0);
  bus_energy_.assign(stride_, 0.0);
  overhead_energy_.assign(stride_, 0.0);
  dyn_.assign(stride_, 0.0);
  errb_.assign(stride_, 0);
  shadowb_.assign(stride_, 0);
  reset(config.initial_word);
}

void MultiPointEngine::build_point(std::size_t p, const OperatingPoint& point) {
  if (point.supply <= 0.0)
    throw std::invalid_argument("MultiPointEngine: non-positive supply");
  // Exactly BusSimulator::refresh_operating_point, written into row `p`
  // of the structure-of-arrays tables.
  const tech::PvtCorner& env = point.environment;
  const double v_eff = env.effective_supply(point.supply);
  const lut::TableSlice slice = table_.slice(env.process, env.temp_c, v_eff);
  const double energy_scale = point.supply / v_eff;

  const double n_drivers =
      static_cast<double>(design_.n_bits) * static_cast<double>(design_.n_segments);
  const double leak_current =
      leakage_.current(design_.repeater_size, env.process, env.temp_c, v_eff);
  leak_[p] = n_drivers * leak_current * point.supply * design_.clock_period();

  double* se = &scaled_energy_[p * lut::PatternClass::kCount];
  double* cd = &class_delay_[p * lut::PatternClass::kCount];
  detail::Verdict* cv = &class_verdict_[p * lut::PatternClass::kCount];
  for (int cls = 0; cls < lut::PatternClass::kCount; ++cls) {
    se[cls] = slice.energy[cls] * energy_scale;
    cd[cls] = slice.delay[cls];
    cv[cls] = std::isnan(cd[cls]) ? detail::Verdict::held
                                  : classify_arrival_for(timing_, cd[cls]);
  }

  if (!layout_.tabulatable) return;
  bool ok = true;
  bool built[detail::GroupLayout::kMaxTableWidth + 1] = {};
  for (const auto& g : layout_.groups) {
    if (built[g.width]) continue;
    built[g.width] = true;
    const int w = g.width;
    const std::uint32_t combos = 1u << w;
    for (std::uint32_t pm = 0; pm < combos; ++pm) {
      for (std::uint32_t cm = 0; cm < combos; ++cm) {
        const ComboCell cell = compute_combo(w, pm, cm, se, cd, cv);
        if (cell.any_held) ok = false;
        const std::size_t row =
            (g.table_offset + static_cast<std::size_t>((pm << w) | cm)) * stride_;
        combo_energy_[row + p] = cell.energy;
        combo_error_[row + p] = cell.error_mask;
        combo_shadow_[row + p] = cell.shadow_mask;
      }
    }
  }
  combo_ok_[p] = ok ? 1 : 0;
}

void MultiPointEngine::reset(const BusWord& initial_word) {
  prev_word_ = initial_word;
  std::fill(line_.begin(), line_.end(), initial_word & classifier_.bits_mask());
  all_fast_ = all_combo_ok_;
  cycles_ = 0;
  std::fill(errors_.begin(), errors_.end(), 0);
  std::fill(shadow_failures_.begin(), shadow_failures_.end(), 0);
  std::fill(bus_energy_.begin(), bus_energy_.end(), 0.0);
  std::fill(overhead_energy_.begin(), overhead_energy_.end(), 0.0);
}

void MultiPointEngine::run(const BusWord* words, std::size_t n) {
  const bool jitter_on = jitter_sigma_ > 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const BusWord word = words[i];
    if (word == prev_word_) {
      // Idle bus: nothing switches for ANY point — leakage plus the flop
      // clocking overhead, rows at a time.
      ++cycles_;
      simd::add_rows(bus_energy_.data(), leak_.data(), stride_);
      simd::add_const(overhead_energy_.data(), cycle_overhead_, stride_);
      continue;
    }
    const double jitter = jitter_on ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;
    // razorlint: allow(float-eq): exact 0.0 marks "no jitter drawn this cycle".
    if (all_fast_ && jitter == 0.0)
      fast_cycle(word);
    else
      mixed_cycle(word, jitter);
    prev_word_ = word;
  }
}

void MultiPointEngine::fast_cycle(const BusWord& word) {
  // Every point is on the zero-jitter table path: the cycle is one combo
  // row per shield group, reduced with the SIMD kernels. Receiver lines
  // stay implicitly in sync (line == word on the signal wires), so no
  // per-point line update is needed.
  std::fill(dyn_.begin(), dyn_.end(), 0.0);
  std::memset(errb_.data(), 0, stride_);
  std::memset(shadowb_.data(), 0, stride_);
  const BusWord prev = prev_word_;
  for (const auto& g : layout_.groups) {
    const std::uint64_t pm = prev.extract(g.start, g.width);
    const std::uint64_t cm = word.extract(g.start, g.width);
    const std::size_t row =
        (g.table_offset + static_cast<std::size_t>((pm << g.width) | cm)) * stride_;
    simd::add_rows(dyn_.data(), combo_energy_.data() + row, stride_);
    simd::or_bytes(errb_.data(), combo_error_.data() + row, stride_);
    simd::or_bytes(shadowb_.data(), combo_shadow_.data() + row, stride_);
  }
  simd::add2_rows(bus_energy_.data(), dyn_.data(), leak_.data(), stride_);
  ++cycles_;
  for (std::size_t p = 0; p < n_points_; ++p) {
    const bool error = errb_[p] != 0;
    errors_[p] += error ? 1u : 0u;
    shadow_failures_[p] += shadowb_[p] != 0 ? 1u : 0u;
    overhead_energy_[p] += error ? cycle_error_overhead_ : cycle_overhead_;
  }
}

void MultiPointEngine::mixed_cycle(const BusWord& word, double jitter) {
  // The general cycle: jittered arrivals, a desynced receiver, a
  // combo-ineligible point, or an untabulatable layout. Points are walked
  // one at a time with the scalar engine's own per-point kernel
  // selection; the trace-dependent pattern work (class masks / per-wire
  // classes) is shared across points, computed lazily on first demand.
  const BusWord prev = prev_word_;
  const BusWord bits_mask = classifier_.bits_mask();
  if (all_fast_) {
    // Leaving the fast path: materialize the per-point receiver lines
    // (all equal to prev on the signal wires while the path was hot).
    std::fill(line_.begin(), line_.end(), prev & bits_mask);
    all_fast_ = false;
  }

  ClassMaskSet masks{};
  bool have_masks = false;
  bool have_classes = false;

  ++cycles_;
  for (std::size_t p = 0; p < n_points_; ++p) {
    const double* cd = &class_delay_[p * lut::PatternClass::kCount];
    double dynamic_energy = 0.0;
    BusWord error_mask, shadow_mask, line_update;

    if (!layout_.tabulatable) {
      // Per-wire general kernel (BusSimulator::general_kernel).
      if (!have_classes) {
        classifier_.classify_all(prev, word, classes_.data());
        have_classes = true;
      }
      const double* se = &scaled_energy_[p * lut::PatternClass::kCount];
      const BusWord flop_toggle = word ^ line_[p];
      for (const auto& g : layout_.groups) {
        double sub = 0.0;
        for (int bit = g.start; bit < g.start + g.width; ++bit) {
          const int cls = classes_[static_cast<std::size_t>(bit)];
          sub += se[cls];
          const double d = cd[cls];
          if (std::isnan(d)) continue;
          const double arrival = d + jitter;
          if (!flop_toggle.test(bit)) continue;
          const BusWord wire = BusWord(1) << bit;
          switch (classify_arrival_for(timing_, arrival)) {
            case detail::Verdict::held:
              break;
            case detail::Verdict::clean:
              line_update |= wire;
              break;
            case detail::Verdict::corrected:
              error_mask |= wire;
              line_update |= wire;
              break;
            case detail::Verdict::shadow_failed:
              shadow_mask |= wire;
              line_update |= wire;
              break;
          }
        }
        dynamic_energy += sub;
      }
      // razorlint: allow(float-eq): exact 0.0 marks "no jitter drawn".
    } else if (jitter == 0.0 && combo_ok_[p] &&
               ((line_[p] ^ prev) & bits_mask).none()) {
      // This point still qualifies for the table path
      // (BusSimulator::table_kernel), scalar over its combo rows.
      for (const auto& g : layout_.groups) {
        const std::uint64_t pm = prev.extract(g.start, g.width);
        const std::uint64_t cm = word.extract(g.start, g.width);
        const std::size_t row =
            (g.table_offset + static_cast<std::size_t>((pm << g.width) | cm)) *
            stride_;
        dynamic_energy += combo_energy_[row + p];
        error_mask |= BusWord(combo_error_[row + p]) << g.start;
        shadow_mask |= BusWord(combo_shadow_[row + p]) << g.start;
      }
      line_update = (prev ^ word) & bits_mask;
    } else {
      // Per-class kernel (BusSimulator::jitter_kernel): energy from the
      // combo rows, verdicts re-derived per present switching class.
      for (const auto& g : layout_.groups) {
        const std::uint64_t pm = prev.extract(g.start, g.width);
        const std::uint64_t cm = word.extract(g.start, g.width);
        dynamic_energy +=
            combo_energy_[(g.table_offset +
                           static_cast<std::size_t>((pm << g.width) | cm)) *
                              stride_ +
                          p];
      }
      if (!have_masks) {
        masks = classifier_.masks(prev, word);
        have_masks = true;
      }
      const BusWord flop_toggle = word ^ line_[p];
      for (int v = 0; v < 2; ++v) {  // rise, fall: the switching victims
        const BusWord vm = masks.victim[v];
        if (!vm.any()) continue;
        for (int l = 0; l < 4; ++l) {
          const BusWord vl = vm & masks.left[l];
          if (!vl.any()) continue;
          for (int r = 0; r < 4; ++r) {
            const BusWord mask = vl & masks.right[r];
            if (!mask.any()) continue;
            const int cls = (v << 4) | (l << 2) | r;
            const double arrival = cd[cls] + jitter;
            const BusWord active = mask & flop_toggle;
            if (!active.any()) continue;
            switch (classify_arrival_for(timing_, arrival)) {
              case detail::Verdict::held:
                break;
              case detail::Verdict::clean:
                line_update |= active;
                break;
              case detail::Verdict::corrected:
                error_mask |= active;
                line_update |= active;
                break;
              case detail::Verdict::shadow_failed:
                shadow_mask |= active;
                line_update |= active;
                break;
            }
          }
        }
      }
    }

    line_[p] = (line_[p] & ~line_update) | (word & line_update);
    const bool error = error_mask.any();
    errors_[p] += error ? 1u : 0u;
    shadow_failures_[p] += shadow_mask.any() ? 1u : 0u;
    bus_energy_[p] += dynamic_energy + leak_[p];
    overhead_energy_[p] += error ? cycle_error_overhead_ : cycle_overhead_;
  }

  // Rejoin the all-points fast path once every receiver line is back in
  // sync with the new prev (= word) — immediately after a transient
  // jitter cycle in which every active wire captured.
  if (all_combo_ok_) {
    bool sync = true;
    for (std::size_t p = 0; p < n_points_; ++p) {
      if (((line_[p] ^ word) & bits_mask).any()) {
        sync = false;
        break;
      }
    }
    all_fast_ = sync;
  }
}

void MultiPointEngine::run(trace::TraceSource& source, std::size_t block_cycles) {
  if (block_cycles == 0)
    throw std::invalid_argument("MultiPointEngine::run: block_cycles must be > 0");
  if (source.n_bits() > design_.n_bits)
    throw std::invalid_argument("MultiPointEngine::run: stream '" + source.name() +
                                "' is " + std::to_string(source.n_bits()) +
                                " bits wide but the bus has " +
                                std::to_string(design_.n_bits) + " wires");
  std::vector<BusWord> buffer(block_cycles);
  for (;;) {
    const std::size_t n = source.next_block(buffer.data(), buffer.size());
    if (n == 0) break;
    run(buffer.data(), n);
  }
}

RunningTotals MultiPointEngine::totals(std::size_t point) const {
  RunningTotals t;
  t.cycles = cycles_;
  t.errors = errors_[point];
  t.shadow_failures = shadow_failures_[point];
  t.bus_energy = bus_energy_[point];
  t.overhead_energy = overhead_energy_[point];
  return t;
}

std::vector<RunningTotals> MultiPointEngine::all_totals() const {
  std::vector<RunningTotals> out(n_points_);
  for (std::size_t p = 0; p < n_points_; ++p) out[p] = totals(p);
  return out;
}

std::vector<RunningTotals> multi_point_run(const interconnect::BusDesign& design,
                                           const lut::DelayEnergyTable& table,
                                           const std::vector<OperatingPoint>& points,
                                           const BusWord* words, std::size_t n,
                                           const MultiPointConfig& config) {
  MultiPointEngine engine(design, table, points, config);
  engine.run(words, n);
  return engine.all_totals();
}

std::vector<RunningTotals> multi_point_run(const interconnect::BusDesign& design,
                                           const lut::DelayEnergyTable& table,
                                           const std::vector<OperatingPoint>& points,
                                           const std::vector<BusWord>& words,
                                           const MultiPointConfig& config) {
  return multi_point_run(design, table, points, words.data(), words.size(), config);
}

std::vector<RunningTotals> multi_point_run(const interconnect::BusDesign& design,
                                           const lut::DelayEnergyTable& table,
                                           const std::vector<OperatingPoint>& points,
                                           trace::TraceSource& source,
                                           const MultiPointConfig& config,
                                           std::size_t block_cycles) {
  MultiPointEngine engine(design, table, points, config);
  engine.run(source, block_cycles);
  return engine.all_totals();
}

}  // namespace razorbus::bus

#include "bus/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/bits.hpp"
#include "util/units.hpp"

namespace razorbus::bus {

namespace {

razor::FlopTiming make_timing(const interconnect::BusDesign& design) {
  razor::FlopTiming t{};
  t.main_capture_limit = design.main_capture_limit();
  t.shadow_capture_limit = design.shadow_capture_limit();
  // Short paths must not race past the delayed shadow clock. Common-mode
  // jitter moves data and clock together, so leave a small allowance
  // rather than comparing against the raw shadow delay. Clamped at zero
  // (= check disabled) so a small shadow_delay_fraction cannot produce a
  // negative limit that would spuriously flag every fast arrival.
  t.min_path_limit =
      std::max(0.0, design.shadow_delay_fraction * design.clock_period() - 15e-12);
  return t;
}

}  // namespace

BusSimulator::BusSimulator(const interconnect::BusDesign& design,
                           const lut::DelayEnergyTable& table,
                           tech::PvtCorner environment,
                           razor::RecoveryCostModel recovery)
    : design_(design),
      table_(table),
      environment_(environment),
      recovery_(recovery),
      leakage_(design.node),
      classifier_(design),
      bank_(design.n_bits, make_timing(design)),
      timing_(make_timing(design)),
      arrivals_(static_cast<std::size_t>(design.n_bits), -1.0),
      classes_(static_cast<std::size_t>(design.n_bits), 0) {
  design_.validate();
  if (design_.repeater_size <= 0.0)
    throw std::invalid_argument("BusSimulator: repeaters not sized");
  cycle_overhead_ = recovery_.cycle_overhead(design_.n_bits);
  error_overhead_ = recovery_.error_overhead(design_.n_bits);
  build_group_structure();
  set_supply(design_.node.vdd_nominal);
}

void BusSimulator::build_group_structure() {
  // A group is a maximal run of signal wires with no internal shield; its
  // edges border shields (the layout guarantees shields at both bus
  // edges), so nothing outside a group influences its wires. Same-width
  // groups are structurally identical and share one combo-table block.
  groups_.clear();
  const int n = design_.n_bits;
  std::size_t offsets[kMaxTableWidth + 1];
  std::fill(std::begin(offsets), std::end(offsets), static_cast<std::size_t>(-1));
  std::size_t total = 0;
  bool tabulatable = true;

  int i = 0;
  while (i < n) {
    int j = i + 1;
    while (j < n && design_.left_neighbor(j) != interconnect::NeighborKind::shield) ++j;
    WireGroup g;
    g.start = i;
    g.width = j - i;
    if (g.width > kMaxTableWidth) {
      tabulatable = false;
    } else {
      if (offsets[g.width] == static_cast<std::size_t>(-1)) {
        offsets[g.width] = total;
        total += static_cast<std::size_t>(1) << (2 * g.width);
      }
      g.table_offset = offsets[g.width];
    }
    groups_.push_back(g);
    i = j;
  }

  group_tables_enabled_ = tabulatable;
  if (group_tables_enabled_) {
    combo_energy_.assign(total, 0.0);
    combo_worst_.assign(total, 0.0);
    combo_error_.assign(total, 0);
    combo_shadow_.assign(total, 0);
  }
}

void BusSimulator::set_supply(double volts) {
  if (volts <= 0.0) throw std::invalid_argument("BusSimulator: non-positive supply");
  // Tolerant compare (kSupplyToleranceVolts, shared with the regulator):
  // the regulator accumulates 20 mV steps in floating point, so "the same
  // voltage" can arrive a few ULPs away from the value we cached. A
  // sub-nanovolt difference never changes the interpolated tables, while
  // an exact != would force a needless operating-point refresh on every
  // closed-loop segment.
  if (supply_ > 0.0 && std::fabs(volts - supply_) <= kSupplyToleranceVolts) return;
  supply_ = volts;
  refresh_operating_point();
}

std::string to_string(EngineMode mode) {
  return mode == EngineMode::bit_parallel ? "bit_parallel" : "reference";
}

EngineMode engine_mode_from_string(const std::string& name) {
  if (name == "bit_parallel") return EngineMode::bit_parallel;
  if (name == "reference") return EngineMode::reference;
  throw std::invalid_argument("unknown engine mode '" + name +
                              "' (expected bit_parallel or reference)");
}

void BusSimulator::set_engine_mode(EngineMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  // The engines share receiver state through line_word_: the reference
  // engine re-seeds its flop bank from it, the bit-parallel engine reads
  // it directly. Counters and totals carry over untouched.
  if (mode_ == EngineMode::reference)
    bank_ = razor::FlopBank(design_.n_bits, timing_, line_word_);
}

BusSimulator::Verdict BusSimulator::classify_arrival(double arrival) const {
  // Branch order mirrors DoubleSamplingFlop::clock exactly; keeping the
  // comparison chain identical is what makes the engines bit-compatible.
  if (arrival <= 0.0) return Verdict::held;
  if (timing_.min_path_limit > 0.0 && arrival < timing_.min_path_limit)
    return Verdict::shadow_failed;
  if (arrival <= timing_.main_capture_limit) return Verdict::clean;
  if (arrival <= timing_.shadow_capture_limit) return Verdict::corrected;
  return Verdict::shadow_failed;
}

void BusSimulator::refresh_operating_point() {
  const double v_eff = environment_.effective_supply(supply_);
  slice_ = table_.slice(environment_.process, environment_.temp_c, v_eff);
  // The tables are characterised at the drooped driver voltage; the charge
  // is still drawn from the un-drooped supply rail.
  energy_scale_ = supply_ / v_eff;

  const double n_drivers =
      static_cast<double>(design_.n_bits) * static_cast<double>(design_.n_segments);
  const double leak_current = leakage_.current(
      design_.repeater_size, environment_.process, environment_.temp_c, v_eff);
  leakage_energy_per_cycle_ = n_drivers * leak_current * supply_ * design_.clock_period();

  // Per-class precomputation: all wires of a class share one delay, so the
  // capture verdict (at zero jitter) and the rail-scaled energy are
  // functions of the operating point alone.
  for (int cls = 0; cls < lut::PatternClass::kCount; ++cls) {
    scaled_energy_[cls] = slice_.energy[cls] * energy_scale_;
    class_delay_[cls] = slice_.delay[cls];
    class_verdict_[cls] = std::isnan(class_delay_[cls])
                              ? Verdict::held
                              : classify_arrival(class_delay_[cls]);
  }
  if (group_tables_enabled_) rebuild_group_tables();
}

void BusSimulator::rebuild_group_tables() {
  using lut::NeighborActivity;
  using lut::PatternClass;

  combo_zero_jitter_ok_ = true;
  bool built[kMaxTableWidth + 1] = {};
  for (const auto& g : groups_) {
    if (built[g.width]) continue;
    built[g.width] = true;
    const int w = g.width;
    const std::uint32_t combos = 1u << w;
    for (std::uint32_t pm = 0; pm < combos; ++pm) {
      for (std::uint32_t cm = 0; cm < combos; ++cm) {
        // Per-bit chain in ascending bit order: the exact operation
        // sequence every engine uses for this group's energy sub-sum.
        double sub = 0.0;
        double worst = 0.0;
        std::uint8_t error_mask = 0;
        std::uint8_t shadow_mask = 0;
        for (int b = 0; b < w; ++b) {
          const auto victim =
              lut::classify_victim((pm >> b) & 1u, (cm >> b) & 1u);
          const NeighborActivity left =
              b == 0 ? NeighborActivity::shield
                     : lut::classify_neighbor((pm >> (b - 1)) & 1u, (cm >> (b - 1)) & 1u);
          const NeighborActivity right =
              b == w - 1
                  ? NeighborActivity::shield
                  : lut::classify_neighbor((pm >> (b + 1)) & 1u, (cm >> (b + 1)) & 1u);
          const int cls = PatternClass::encode(victim, left, right);
          sub += scaled_energy_[cls];
          const double d = class_delay_[cls];
          if (std::isnan(d)) continue;
          if (d > worst) worst = d;
          // A switching victim toggles by definition, so at zero jitter
          // (line == prev) the wire is active and the class verdict is the
          // wire verdict.
          switch (class_verdict_[cls]) {
            case Verdict::held:
              // Arrival <= 0 at zero jitter: the wire would silently keep
              // its old value, which the toggle-update table path cannot
              // express — route such operating points through the
              // per-class kernel instead.
              combo_zero_jitter_ok_ = false;
              break;
            case Verdict::clean:
              break;
            case Verdict::corrected:
              error_mask |= static_cast<std::uint8_t>(1u << b);
              break;
            case Verdict::shadow_failed:
              shadow_mask |= static_cast<std::uint8_t>(1u << b);
              break;
          }
        }
        const std::size_t idx = g.table_offset + ((pm << w) | cm);
        combo_energy_[idx] = sub;
        combo_worst_[idx] = worst;
        combo_error_[idx] = error_mask;
        combo_shadow_[idx] = shadow_mask;
      }
    }
  }
}

void BusSimulator::set_timing_jitter(double sigma_seconds, std::uint64_t seed) {
  if (sigma_seconds < 0.0) throw std::invalid_argument("negative jitter sigma");
  jitter_sigma_ = sigma_seconds;
  jitter_rng_ = Rng(seed);
}

void BusSimulator::account_idle(CycleResult& out) {
  // Idle bus: nothing switches, no flop can err, no dynamic energy.
  out.bus_energy = leakage_energy_per_cycle_;
  out.overhead_energy = cycle_overhead_;
  ++totals_.cycles;
  totals_.bus_energy += out.bus_energy;
  totals_.overhead_energy += out.overhead_energy;
}

CycleResult BusSimulator::step(const BusWord& word) {
  return mode_ == EngineMode::bit_parallel ? step_bit_parallel(word)
                                           : step_reference(word);
}

// --------------------------------------------------------------- reference

CycleResult BusSimulator::step_reference(const BusWord& word) {
  CycleResult out;

  if (word == prev_word_) {
    bank_.tick_hold();
    account_idle(out);
    return out;
  }

  classifier_.classify_all(prev_word_, word, classes_.data());
  const double jitter =
      jitter_sigma_ > 0.0 ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;

  double worst = 0.0;
  for (int bit = 0; bit < classifier_.n_bits(); ++bit) {
    const double d = slice_.delay[classes_[static_cast<std::size_t>(bit)]];
    if (std::isnan(d)) {
      arrivals_[static_cast<std::size_t>(bit)] = -1.0;
    } else {
      const double arrival = d + jitter;
      arrivals_[static_cast<std::size_t>(bit)] = arrival;
      if (arrival > worst) worst = arrival;
    }
  }
  // Group-wise energy accounting (one sub-accumulator per shield group,
  // groups summed in order): the exact operation sequence of the
  // bit-parallel engine's precomputed group tables, so the engines'
  // energy totals match bit for bit.
  double dynamic_energy = 0.0;
  for (const auto& g : groups_) {
    double sub = 0.0;
    for (int bit = g.start; bit < g.start + g.width; ++bit)
      sub += scaled_energy_[classes_[static_cast<std::size_t>(bit)]];
    dynamic_energy += sub;
  }

  const razor::BankCycleResult bank = bank_.clock(word, arrivals_);
  line_word_ = bank.captured;
  out.error = bank.error;
  out.shadow_failure = bank.shadow_failure;
  out.worst_delay = worst;
  out.bus_energy = dynamic_energy + leakage_energy_per_cycle_;
  out.overhead_energy = cycle_overhead_;
  if (bank.error) out.overhead_energy += error_overhead_;

  prev_word_ = word;
  ++totals_.cycles;
  if (out.error) ++totals_.errors;
  if (out.shadow_failure) ++totals_.shadow_failures;
  totals_.bus_energy += out.bus_energy;
  totals_.overhead_energy += out.overhead_energy;
  return out;
}

// ------------------------------------------------------------ bit-parallel

BusSimulator::CycleOutcome BusSimulator::table_kernel(const BusWord& prev,
                                                      const BusWord& word) const {
  // Jitter-free, receiver in sync: the whole cycle is one lookup per
  // shield group. Every toggling wire captures (cleanly or not), so the
  // line update is simply the toggle mask.
  CycleOutcome out;
  for (const auto& g : groups_) {
    const std::uint64_t pm = prev.extract(g.start, g.width);
    const std::uint64_t cm = word.extract(g.start, g.width);
    const std::size_t idx =
        g.table_offset + static_cast<std::size_t>((pm << g.width) | cm);
    out.dynamic_energy += combo_energy_[idx];
    if (combo_worst_[idx] > out.worst_delay) out.worst_delay = combo_worst_[idx];
    out.error_mask |= BusWord(combo_error_[idx]) << g.start;
    out.shadow_mask |= BusWord(combo_shadow_[idx]) << g.start;
  }
  out.line_update = (prev ^ word) & classifier_.bits_mask();
  return out;
}

BusSimulator::CycleOutcome BusSimulator::jitter_kernel(const BusWord& prev,
                                                       const BusWord& word,
                                                       const BusWord& line,
                                                       double jitter) const {
  CycleOutcome out;
  // Energy and the per-group sub-sum order are jitter-independent: reuse
  // the combo tables.
  for (const auto& g : groups_) {
    const std::uint64_t pm = prev.extract(g.start, g.width);
    const std::uint64_t cm = word.extract(g.start, g.width);
    out.dynamic_energy +=
        combo_energy_[g.table_offset + static_cast<std::size_t>((pm << g.width) | cm)];
  }

  // Verdicts shift with the common-mode jitter: re-derive them per present
  // switching class (all wires of a class share one arrival), comparing
  // arrival = delay + jitter with exactly the flop's comparison chain.
  const ClassMaskSet s = classifier_.masks(prev, word);
  const BusWord flop_toggle = word ^ line;
  for (int v = 0; v < 2; ++v) {  // rise, fall: the switching victims
    const BusWord vm = s.victim[v];
    if (!vm.any()) continue;
    for (int l = 0; l < 4; ++l) {
      const BusWord vl = vm & s.left[l];
      if (!vl.any()) continue;
      for (int r = 0; r < 4; ++r) {
        const BusWord mask = vl & s.right[r];
        if (!mask.any()) continue;
        const int cls = (v << 4) | (l << 2) | r;
        const double arrival = class_delay_[cls] + jitter;
        if (arrival > out.worst_delay) out.worst_delay = arrival;
        const BusWord active = mask & flop_toggle;
        if (!active.any()) continue;
        switch (classify_arrival(arrival)) {
          case Verdict::held:
            break;
          case Verdict::clean:
            out.line_update |= active;
            break;
          case Verdict::corrected:
            out.error_mask |= active;
            out.line_update |= active;
            break;
          case Verdict::shadow_failed:
            out.shadow_mask |= active;
            out.line_update |= active;
            break;
        }
      }
    }
  }
  return out;
}

BusSimulator::CycleOutcome BusSimulator::general_kernel(const BusWord& prev,
                                                        const BusWord& word,
                                                        const BusWord& line,
                                                        double jitter) {
  // Per-wire fallback for untabulatable layouts (a shield group wider than
  // kMaxTableWidth): classify every wire, keep the group-wise energy
  // accounting, and apply the class verdict per wire.
  CycleOutcome out;
  classifier_.classify_all(prev, word, classes_.data());
  const BusWord flop_toggle = word ^ line;
  for (const auto& g : groups_) {
    double sub = 0.0;
    for (int bit = g.start; bit < g.start + g.width; ++bit) {
      const int cls = classes_[static_cast<std::size_t>(bit)];
      sub += scaled_energy_[cls];
      const double d = class_delay_[cls];
      if (std::isnan(d)) continue;
      const double arrival = d + jitter;
      if (arrival > out.worst_delay) out.worst_delay = arrival;
      if (!flop_toggle.test(bit)) continue;
      const BusWord wire = BusWord(1) << bit;
      switch (classify_arrival(arrival)) {
        case Verdict::held:
          break;
        case Verdict::clean:
          out.line_update |= wire;
          break;
        case Verdict::corrected:
          out.error_mask |= wire;
          out.line_update |= wire;
          break;
        case Verdict::shadow_failed:
          out.shadow_mask |= wire;
          out.line_update |= wire;
          break;
      }
    }
    out.dynamic_energy += sub;
  }
  return out;
}

CycleResult BusSimulator::step_bit_parallel(const BusWord& word) {
  CycleResult out;

  if (word == prev_word_) {
    account_idle(out);
    return out;
  }

  const double jitter =
      jitter_sigma_ > 0.0 ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;
  const bool in_sync = ((line_word_ ^ prev_word_) & classifier_.bits_mask()).none();
  CycleOutcome k;
  if (!group_tables_enabled_)
    k = general_kernel(prev_word_, word, line_word_, jitter);
  else if (jitter == 0.0 && in_sync && combo_zero_jitter_ok_)
    k = table_kernel(prev_word_, word);
  else
    k = jitter_kernel(prev_word_, word, line_word_, jitter);

  line_word_ = (line_word_ & ~k.line_update) | (word & k.line_update);
  out.error = k.error_mask.any();
  out.shadow_failure = k.shadow_mask.any();
  out.worst_delay = k.worst_delay;
  out.bus_energy = k.dynamic_energy + leakage_energy_per_cycle_;
  out.overhead_energy = cycle_overhead_;
  if (out.error) out.overhead_energy += error_overhead_;

  prev_word_ = word;
  ++totals_.cycles;
  if (out.error) ++totals_.errors;
  if (out.shadow_failure) ++totals_.shadow_failures;
  totals_.bus_energy += out.bus_energy;
  totals_.overhead_energy += out.overhead_energy;
  return out;
}

void BusSimulator::run_bit_parallel(const BusWord* words, std::size_t n) {
  // Totals accumulate in registers across the whole span; the per-cycle
  // operation sequence (one `+= dynamic + leakage` per cycle, etc.) is
  // kept identical to step(), so batching never changes a single bit.
  std::uint64_t cycles = totals_.cycles;
  std::uint64_t errors = totals_.errors;
  std::uint64_t shadow_failures = totals_.shadow_failures;
  double bus_energy = totals_.bus_energy;
  double overhead_energy = totals_.overhead_energy;
  BusWord prev = prev_word_;
  BusWord line = line_word_;

  const double leak = leakage_energy_per_cycle_;
  const double cycle_ovh = cycle_overhead_;
  const double error_ovh = error_overhead_;
  const bool jitter_on = jitter_sigma_ > 0.0;
  const BusWord bits_mask = classifier_.bits_mask();

  for (std::size_t i = 0; i < n; ++i) {
    const BusWord word = words[i];
    if (word == prev) {
      ++cycles;
      bus_energy += leak;
      overhead_energy += cycle_ovh;
      continue;
    }
    const double jitter = jitter_on ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;
    CycleOutcome k;
    if (!group_tables_enabled_)
      k = general_kernel(prev, word, line, jitter);
    else if (jitter == 0.0 && ((line ^ prev) & bits_mask).none() && combo_zero_jitter_ok_)
      k = table_kernel(prev, word);
    else
      k = jitter_kernel(prev, word, line, jitter);

    line = (line & ~k.line_update) | (word & k.line_update);
    prev = word;
    ++cycles;
    const bool error = k.error_mask.any();
    if (error) ++errors;
    if (k.shadow_mask.any()) ++shadow_failures;
    bus_energy += k.dynamic_energy + leak;
    double ovh = cycle_ovh;
    if (error) ovh += error_ovh;
    overhead_energy += ovh;
  }

  totals_.cycles = cycles;
  totals_.errors = errors;
  totals_.shadow_failures = shadow_failures;
  totals_.bus_energy = bus_energy;
  totals_.overhead_energy = overhead_energy;
  prev_word_ = prev;
  line_word_ = line;
}

// ------------------------------------------------------------------ shared

RunningTotals BusSimulator::run(const BusWord* words, std::size_t n) {
  const RunningTotals before = totals_;
  if (mode_ == EngineMode::bit_parallel) {
    run_bit_parallel(words, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) step_reference(words[i]);
  }
  RunningTotals delta;
  delta.cycles = totals_.cycles - before.cycles;
  delta.errors = totals_.errors - before.errors;
  delta.shadow_failures = totals_.shadow_failures - before.shadow_failures;
  delta.bus_energy = totals_.bus_energy - before.bus_energy;
  delta.overhead_energy = totals_.overhead_energy - before.overhead_energy;
  return delta;
}

RunningTotals BusSimulator::run(const std::uint32_t* words, std::size_t n) {
  const std::vector<BusWord> wide(words, words + n);
  return run(wide.data(), wide.size());
}

RunningTotals BusSimulator::run(trace::TraceSource& source, std::size_t block_cycles) {
  if (block_cycles == 0)
    throw std::invalid_argument("BusSimulator::run: block_cycles must be > 0");
  if (source.n_bits() > design_.n_bits)
    throw std::invalid_argument("BusSimulator::run: stream '" + source.name() +
                                "' is " + std::to_string(source.n_bits()) +
                                " bits wide but the bus has " +
                                std::to_string(design_.n_bits) + " wires");
  const RunningTotals before = totals_;
  std::vector<BusWord> buffer(block_cycles);
  for (;;) {
    const std::size_t n = source.next_block(buffer.data(), buffer.size());
    if (n == 0) break;
    run(buffer.data(), n);
  }
  RunningTotals delta;
  delta.cycles = totals_.cycles - before.cycles;
  delta.errors = totals_.errors - before.errors;
  delta.shadow_failures = totals_.shadow_failures - before.shadow_failures;
  delta.bus_energy = totals_.bus_energy - before.bus_energy;
  delta.overhead_energy = totals_.overhead_energy - before.overhead_energy;
  return delta;
}

void BusSimulator::reset(const BusWord& initial_word) {
  prev_word_ = initial_word;
  line_word_ = initial_word & classifier_.bits_mask();
  totals_ = RunningTotals{};
  bank_ = razor::FlopBank(design_.n_bits, timing_, initial_word);
}

double BusSimulator::peek_cycle_energy(const BusWord& word) const {
  // Per-group sub-sums, same accounting as the engines.
  double energy = leakage_energy_per_cycle_;
  if (word == prev_word_) return energy;
  for (const auto& g : groups_) {
    double sub = 0.0;
    for (int bit = g.start; bit < g.start + g.width; ++bit)
      sub += slice_.energy[classifier_.classify(prev_word_, word, bit)] * energy_scale_;
    energy += sub;
  }
  return energy;
}

RunningTotals BusSimulator::run_reference(const interconnect::BusDesign& design,
                                          const lut::DelayEnergyTable& table,
                                          tech::PvtCorner environment,
                                          const std::vector<BusWord>& words) {
  BusSimulator sim(design, table, environment);
  sim.set_supply(design.node.vdd_nominal);
  sim.run(words.data(), words.size());
  return sim.totals();
}

RunningTotals BusSimulator::run_reference(const interconnect::BusDesign& design,
                                          const lut::DelayEnergyTable& table,
                                          tech::PvtCorner environment,
                                          const std::vector<std::uint32_t>& words) {
  return run_reference(design, table, environment,
                       std::vector<BusWord>(words.begin(), words.end()));
}

}  // namespace razorbus::bus

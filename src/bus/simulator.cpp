#include "bus/simulator.hpp"

#include <cmath>
#include <stdexcept>

namespace razorbus::bus {

namespace {

razor::FlopTiming make_timing(const interconnect::BusDesign& design) {
  razor::FlopTiming t{};
  t.main_capture_limit = design.main_capture_limit();
  t.shadow_capture_limit = design.shadow_capture_limit();
  // Short paths must not race past the delayed shadow clock. Common-mode
  // jitter moves data and clock together, so leave a small allowance
  // rather than comparing against the raw shadow delay.
  t.min_path_limit = design.shadow_delay_fraction * design.clock_period() - 15e-12;
  return t;
}

}  // namespace

BusSimulator::BusSimulator(const interconnect::BusDesign& design,
                           const lut::DelayEnergyTable& table, tech::PvtCorner environment,
                           razor::RecoveryCostModel recovery)
    : design_(design),
      table_(table),
      environment_(environment),
      recovery_(recovery),
      leakage_(design.node),
      classifier_(design),
      bank_(design.n_bits, make_timing(design)),
      arrivals_(static_cast<std::size_t>(design.n_bits), -1.0),
      classes_(static_cast<std::size_t>(design.n_bits), 0) {
  design_.validate();
  if (design_.repeater_size <= 0.0)
    throw std::invalid_argument("BusSimulator: repeaters not sized");
  set_supply(design_.node.vdd_nominal);
}

void BusSimulator::set_supply(double volts) {
  if (volts <= 0.0) throw std::invalid_argument("BusSimulator: non-positive supply");
  if (volts == supply_) return;
  supply_ = volts;
  refresh_operating_point();
}

void BusSimulator::refresh_operating_point() {
  const double v_eff = environment_.effective_supply(supply_);
  slice_ = table_.slice(environment_.process, environment_.temp_c, v_eff);
  // The tables are characterised at the drooped driver voltage; the charge
  // is still drawn from the un-drooped supply rail.
  energy_scale_ = supply_ / v_eff;

  const double n_drivers =
      static_cast<double>(design_.n_bits) * static_cast<double>(design_.n_segments);
  const double leak_current = leakage_.current(design_.repeater_size, environment_.process,
                                               environment_.temp_c, v_eff);
  leakage_energy_per_cycle_ = n_drivers * leak_current * supply_ * design_.clock_period();
}

double BusSimulator::wire_energy(int cls) const {
  return slice_.energy[cls] * energy_scale_;
}

void BusSimulator::set_timing_jitter(double sigma_seconds, std::uint64_t seed) {
  if (sigma_seconds < 0.0) throw std::invalid_argument("negative jitter sigma");
  jitter_sigma_ = sigma_seconds;
  jitter_rng_ = Rng(seed);
}

CycleResult BusSimulator::step(std::uint32_t word) {
  CycleResult out;

  if (word == prev_word_) {
    // Idle bus: nothing switches, no flop can err, no dynamic energy.
    bank_.tick_hold();
    out.bus_energy = leakage_energy_per_cycle_;
    out.overhead_energy = recovery_.cycle_overhead(design_.n_bits);
    ++totals_.cycles;
    totals_.bus_energy += out.bus_energy;
    totals_.overhead_energy += out.overhead_energy;
    return out;
  }

  classifier_.classify_all(prev_word_, word, classes_.data());
  const double jitter =
      jitter_sigma_ > 0.0 ? jitter_rng_.normal(0.0, jitter_sigma_) : 0.0;

  double dynamic_energy = 0.0;
  double worst = 0.0;
  for (int bit = 0; bit < classifier_.n_bits(); ++bit) {
    const int cls = classes_[static_cast<std::size_t>(bit)];
    dynamic_energy += wire_energy(cls);
    const double d = slice_.delay[cls];
    if (std::isnan(d)) {
      arrivals_[static_cast<std::size_t>(bit)] = -1.0;
    } else {
      const double arrival = d + jitter;
      arrivals_[static_cast<std::size_t>(bit)] = arrival;
      if (arrival > worst) worst = arrival;
    }
  }

  const razor::BankCycleResult bank = bank_.clock(word, arrivals_);
  out.error = bank.error;
  out.shadow_failure = bank.shadow_failure;
  out.worst_delay = worst;
  out.bus_energy = dynamic_energy + leakage_energy_per_cycle_;
  out.overhead_energy = recovery_.cycle_overhead(design_.n_bits);
  if (bank.error) out.overhead_energy += recovery_.error_overhead(design_.n_bits);

  prev_word_ = word;
  ++totals_.cycles;
  if (out.error) ++totals_.errors;
  if (out.shadow_failure) ++totals_.shadow_failures;
  totals_.bus_energy += out.bus_energy;
  totals_.overhead_energy += out.overhead_energy;
  return out;
}

void BusSimulator::reset(std::uint32_t initial_word) {
  prev_word_ = initial_word;
  totals_ = RunningTotals{};
  bank_ = razor::FlopBank(design_.n_bits, make_timing(design_));
}

double BusSimulator::peek_cycle_energy(std::uint32_t word) const {
  double energy = leakage_energy_per_cycle_;
  for (int bit = 0; bit < classifier_.n_bits(); ++bit)
    energy += slice_.energy[classifier_.classify(prev_word_, word, bit)] * energy_scale_;
  return energy;
}

RunningTotals BusSimulator::run_reference(const interconnect::BusDesign& design,
                                          const lut::DelayEnergyTable& table,
                                          tech::PvtCorner environment,
                                          const std::vector<std::uint32_t>& words) {
  BusSimulator sim(design, table, environment);
  sim.set_supply(design.node.vdd_nominal);
  for (const auto w : words) sim.step(w);
  return sim.totals();
}

}  // namespace razorbus::bus

#include "bus/businvert.hpp"

#include <stdexcept>
#include <utility>

namespace razorbus::bus {

namespace {

// In-place block re-coder: pulls raw words and replaces each with the word
// bus-invert would physically drive, using exactly bus_invert_encode's
// per-cycle decision so the streamed and materialized sequences match word
// for word.
class BusInvertSource final : public trace::TraceSource {
 public:
  explicit BusInvertSource(std::unique_ptr<trace::TraceSource> raw)
      : raw_(std::move(raw)) {
    if (!raw_) throw std::invalid_argument("bus_invert_encode_source: null source");
    name_ = raw_->name() + "+businvert";
    mask_ = BusWord::mask_low(raw_->n_bits());
  }

  std::size_t next_block(BusWord* dst, std::size_t max) override {
    const std::size_t n = raw_->next_block(dst, max);
    for (std::size_t i = 0; i < n; ++i) {
      const BusWord direct = (invert_ ? ~dst[i] : dst[i]) & mask_;
      const BusWord flipped = ~direct & mask_;
      const int toggles_direct = (bus_ ^ direct).popcount();
      const int toggles_flipped = (bus_ ^ flipped).popcount() + 1;
      if (toggles_flipped < toggles_direct) {
        invert_ = !invert_;
        bus_ = flipped;
      } else {
        bus_ = direct;
      }
      dst[i] = bus_;
    }
    return n;
  }

  int n_bits() const override { return raw_->n_bits(); }
  const std::string& name() const override { return name_; }
  std::optional<std::uint64_t> length() const override { return raw_->length(); }
  std::unique_ptr<trace::TraceSource> clone() const override {
    return std::make_unique<BusInvertSource>(raw_->clone());
  }

 private:
  std::unique_ptr<trace::TraceSource> raw_;
  std::string name_;
  BusWord mask_;
  BusWord bus_;
  bool invert_ = false;
};

}  // namespace

std::unique_ptr<trace::TraceSource> bus_invert_encode_source(
    std::unique_ptr<trace::TraceSource> raw) {
  return std::make_unique<BusInvertSource>(std::move(raw));
}

BusInvertResult bus_invert_encode(const trace::Trace& raw) {
  BusInvertResult result;
  result.encoded.name = raw.name + "+businvert";
  result.encoded.n_bits = raw.n_bits;
  result.encoded.words.reserve(raw.words.size());
  result.invert_line.reserve(raw.words.size());

  const BusWord mask = BusWord::mask_low(raw.n_bits);
  BusWord bus;          // current physical bus state
  bool invert = false;  // current invert-line state
  for (const BusWord& word : raw.words) {
    const BusWord direct = (invert ? ~word : word) & mask;  // keep line unchanged
    const BusWord flipped = ~direct & mask;
    const int toggles_direct = (bus ^ direct).popcount();
    // Flipping the invert line transmits the complement (+1 for the line).
    const int toggles_flipped = (bus ^ flipped).popcount() + 1;
    if (toggles_flipped < toggles_direct) {
      invert = !invert;
      bus = flipped;
      ++result.inversions;
    } else {
      bus = direct;
    }
    result.encoded.words.push_back(bus);
    result.invert_line.push_back(invert);
  }
  return result;
}

trace::Trace bus_invert_decode(const trace::Trace& encoded,
                               const std::vector<bool>& invert_line) {
  trace::Trace out;
  out.name = encoded.name + "+decoded";
  out.n_bits = encoded.n_bits;
  out.words.reserve(encoded.words.size());
  const BusWord mask = BusWord::mask_low(encoded.n_bits);
  for (std::size_t i = 0; i < encoded.words.size(); ++i) {
    const bool invert = i < invert_line.size() && invert_line[i];
    out.words.push_back(invert ? ~encoded.words[i] & mask : encoded.words[i]);
  }
  return out;
}

std::uint64_t total_toggles(const trace::Trace& trace) {
  std::uint64_t toggles = 0;
  BusWord prev;
  for (const BusWord& w : trace.words) {
    toggles += static_cast<std::uint64_t>((prev ^ w).popcount());
    prev = w;
  }
  return toggles;
}

std::uint64_t invert_line_toggles(const std::vector<bool>& invert_line) {
  std::uint64_t toggles = 0;
  bool prev = false;
  for (const bool b : invert_line) {
    if (b != prev) ++toggles;
    prev = b;
  }
  return toggles;
}

}  // namespace razorbus::bus

#include "bus/businvert.hpp"

namespace razorbus::bus {

BusInvertResult bus_invert_encode(const trace::Trace& raw) {
  BusInvertResult result;
  result.encoded.name = raw.name + "+businvert";
  result.encoded.n_bits = raw.n_bits;
  result.encoded.words.reserve(raw.words.size());
  result.invert_line.reserve(raw.words.size());

  const BusWord mask = BusWord::mask_low(raw.n_bits);
  BusWord bus;          // current physical bus state
  bool invert = false;  // current invert-line state
  for (const BusWord& word : raw.words) {
    const BusWord direct = (invert ? ~word : word) & mask;  // keep line unchanged
    const BusWord flipped = ~direct & mask;
    const int toggles_direct = (bus ^ direct).popcount();
    // Flipping the invert line transmits the complement (+1 for the line).
    const int toggles_flipped = (bus ^ flipped).popcount() + 1;
    if (toggles_flipped < toggles_direct) {
      invert = !invert;
      bus = flipped;
      ++result.inversions;
    } else {
      bus = direct;
    }
    result.encoded.words.push_back(bus);
    result.invert_line.push_back(invert);
  }
  return result;
}

trace::Trace bus_invert_decode(const trace::Trace& encoded,
                               const std::vector<bool>& invert_line) {
  trace::Trace out;
  out.name = encoded.name + "+decoded";
  out.n_bits = encoded.n_bits;
  out.words.reserve(encoded.words.size());
  const BusWord mask = BusWord::mask_low(encoded.n_bits);
  for (std::size_t i = 0; i < encoded.words.size(); ++i) {
    const bool invert = i < invert_line.size() && invert_line[i];
    out.words.push_back(invert ? ~encoded.words[i] & mask : encoded.words[i]);
  }
  return out;
}

std::uint64_t total_toggles(const trace::Trace& trace) {
  std::uint64_t toggles = 0;
  BusWord prev;
  for (const BusWord& w : trace.words) {
    toggles += static_cast<std::uint64_t>((prev ^ w).popcount());
    prev = w;
  }
  return toggles;
}

std::uint64_t invert_line_toggles(const std::vector<bool>& invert_line) {
  std::uint64_t toggles = 0;
  bool prev = false;
  for (const bool b : invert_line) {
    if (b != prev) ++toggles;
    prev = b;
  }
  return toggles;
}

}  // namespace razorbus::bus

// Bus-invert low-power coding (Stan & Burleson), the classic encoding
// baseline the paper cites as orthogonal related work [5].
//
// Each cycle, if transmitting the raw word would toggle more than half the
// wires, the complemented word is sent instead and a dedicated invert line
// is flipped. This bounds the worst-case transition count at n/2 + 1 and
// reduces average switching for random data — at the cost of one extra wire
// and the decode inverters. Implementing it lets the repository quantify
// the paper's orthogonality claim: coding reduces activity (energy at any
// fixed voltage), DVS reduces voltage, and the two compose.
//
// Width-generic: the payload width is the trace's n_bits (16-wire
// peripheral buses through 128-wire flits); the invert decision compares
// against n/2 + 1 at that width and the complement is masked to it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace razorbus::bus {

struct BusInvertResult {
  // The words physically driven on the payload wires.
  trace::Trace encoded;
  // Per-cycle state of the invert line (decode: payload ^ (invert ? ~0 : 0)).
  std::vector<bool> invert_line;
  // How many cycles chose inversion.
  std::uint64_t inversions = 0;
};

// Encode a trace with bus-invert coding. The first cycle starts from an
// all-zero bus with the invert line low.
BusInvertResult bus_invert_encode(const trace::Trace& raw);

// Streaming re-coder (DESIGN.md §12): wraps a raw word stream and emits
// the words bus_invert_encode would drive — identical sequence, identical
// "<name>+businvert" naming — one block at a time, carrying the
// (bus state, invert line) pair across blocks. The per-cycle invert-line
// states are not retained (that sidecar accounting stays with the
// materialized encoder and ablation_encoding).
std::unique_ptr<trace::TraceSource> bus_invert_encode_source(
    std::unique_ptr<trace::TraceSource> raw);

// Decode (for verification): reconstructs the original words.
trace::Trace bus_invert_decode(const trace::Trace& encoded,
                               const std::vector<bool>& invert_line);

// Transition-count bookkeeping used by tests and the ablation bench.
std::uint64_t total_toggles(const trace::Trace& trace);
// Toggles of the invert line itself.
std::uint64_t invert_line_toggles(const std::vector<bool>& invert_line);

}  // namespace razorbus::bus

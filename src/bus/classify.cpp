#include "bus/classify.hpp"

#include <stdexcept>

namespace razorbus::bus {

using lut::NeighborActivity;
using lut::PatternClass;
using lut::VictimActivity;

WireClassifier::WireClassifier(const interconnect::BusDesign& design)
    : n_bits_(design.n_bits) {
  if (n_bits_ <= 0 || n_bits_ > BusWord::kMaxBits)
    throw std::invalid_argument("WireClassifier: 1..128 bits supported");
  bits_mask_ = BusWord::mask_low(n_bits_);
  for (int i = 0; i < n_bits_; ++i) {
    if (design.left_neighbor(i) == interconnect::NeighborKind::shield)
      left_shield_mask_.set(i);
    if (design.right_neighbor(i) == interconnect::NeighborKind::shield)
      right_shield_mask_.set(i);
  }
  // masks() leans on the edge wires being shield-adjacent: without this the
  // shifted neighbor masks would need per-edge special cases.
  if (!left_shield_mask_.test(0) || !right_shield_mask_.test(n_bits_ - 1))
    throw std::invalid_argument("WireClassifier: edge wires must border shields");
}

int WireClassifier::classify(const BusWord& prev, const BusWord& cur, int bit) const {
  const VictimActivity victim = lut::classify_victim(prev.test(bit), cur.test(bit));

  NeighborActivity left = NeighborActivity::shield;
  if (!left_shield_mask_.test(bit))
    left = lut::classify_neighbor(prev.test(bit - 1), cur.test(bit - 1));
  NeighborActivity right = NeighborActivity::shield;
  if (!right_shield_mask_.test(bit))
    right = lut::classify_neighbor(prev.test(bit + 1), cur.test(bit + 1));
  return PatternClass::encode(victim, left, right);
}

void WireClassifier::classify_all(const BusWord& prev, const BusWord& cur,
                                  int* out) const {
  for (int bit = 0; bit < n_bits_; ++bit) out[bit] = classify(prev, cur, bit);
}

}  // namespace razorbus::bus

#include "bus/classify.hpp"

#include <stdexcept>

namespace razorbus::bus {

using lut::NeighborActivity;
using lut::PatternClass;
using lut::VictimActivity;

WireClassifier::WireClassifier(const interconnect::BusDesign& design)
    : n_bits_(design.n_bits) {
  if (n_bits_ <= 0 || n_bits_ > 32)
    throw std::invalid_argument("WireClassifier: 1..32 bits supported");
  bits_mask_ = n_bits_ == 32 ? ~0u : (1u << n_bits_) - 1u;
  for (int i = 0; i < n_bits_; ++i) {
    left_shield_[static_cast<std::size_t>(i)] =
        design.left_neighbor(i) == interconnect::NeighborKind::shield;
    right_shield_[static_cast<std::size_t>(i)] =
        design.right_neighbor(i) == interconnect::NeighborKind::shield;
    if (left_shield_[static_cast<std::size_t>(i)]) left_shield_mask_ |= 1u << i;
    if (right_shield_[static_cast<std::size_t>(i)]) right_shield_mask_ |= 1u << i;
  }
  // masks() leans on the edge wires being shield-adjacent: without this the
  // shifted neighbor masks would need per-edge special cases.
  if (!left_shield_[0] || !right_shield_[static_cast<std::size_t>(n_bits_ - 1)])
    throw std::invalid_argument("WireClassifier: edge wires must border shields");
}

int WireClassifier::classify(std::uint32_t prev, std::uint32_t cur, int bit) const {
  const auto i = static_cast<std::size_t>(bit);
  const bool vp = (prev >> bit) & 1u;
  const bool vc = (cur >> bit) & 1u;
  const VictimActivity victim = lut::classify_victim(vp, vc);

  NeighborActivity left = NeighborActivity::shield;
  if (!left_shield_[i]) {
    const bool lp = (prev >> (bit - 1)) & 1u;
    const bool lc = (cur >> (bit - 1)) & 1u;
    left = lut::classify_neighbor(lp, lc);
  }
  NeighborActivity right = NeighborActivity::shield;
  if (!right_shield_[i]) {
    const bool rp = (prev >> (bit + 1)) & 1u;
    const bool rc = (cur >> (bit + 1)) & 1u;
    right = lut::classify_neighbor(rp, rc);
  }
  return PatternClass::encode(victim, left, right);
}

void WireClassifier::classify_all(std::uint32_t prev, std::uint32_t cur, int* out) const {
  for (int bit = 0; bit < n_bits_; ++bit) out[bit] = classify(prev, cur, bit);
}

}  // namespace razorbus::bus

#include "sys/bus_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "bus/simulator.hpp"
#include "dvs/regulator.hpp"
#include "util/busword.hpp"

namespace razorbus::sys {

namespace {

// Same width rule and message as the single-bus drivers: a trace wider
// than its lane would silently drop high wires; narrower is legal.
void check_lane_width(const core::DvsBusSystem& system, const std::string& name,
                      int n_bits) {
  if (n_bits > system.design().n_bits)
    throw std::invalid_argument(
        "experiment: trace '" + name + "' is " + std::to_string(n_bits) +
        " bits wide but the bus has " + std::to_string(system.design().n_bits) +
        " wires");
}

// Nominal-supply conventional-bus lockstep baseline, matching
// BusSimulator::run_reference (core::make_baseline_sim's contract): fed
// the same word spans, its totals equal a run_reference pass bit for bit.
bus::BusSimulator make_baseline_sim(const core::DvsBusSystem& system,
                                    const tech::PvtCorner& environment) {
  bus::BusSimulator sim(system.design(), system.table(), environment);
  sim.set_supply(system.design().node.vdd_nominal);
  return sim;
}

struct FeedResult {
  std::uint64_t cycles = 0;
  std::uint64_t errors = 0;
};

// Materialized lane cursor: serves a resident trace. available() is the
// whole remainder, so a logical segment is always served in one chunk —
// exactly the single-bus materialized driver's one sim.run per segment.
class TraceCursor {
 public:
  TraceCursor(const trace::Trace& trace, std::size_t limit)
      : words_(trace.words.data()), n_(limit) {}

  bool has_more() { return pos_ < n_; }
  std::size_t available() { return n_ - pos_; }

  FeedResult run(bus::BusSimulator& sim, bus::BusSimulator& baseline,
                 std::size_t count) {
    const bus::RunningTotals d = sim.run(words_ + pos_, count);
    baseline.run(words_ + pos_, count);
    pos_ += count;
    return {d.cycles, d.errors};
  }

  void account(core::StreamStats*, std::size_t) const {}

 private:
  const BusWord* words_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

// Streamed lane cursor: core's StreamFeeder with the buffered count
// exposed, so the lockstep loop can cut a chunk every lane can serve.
// Refill timing and accounting match the single-bus feeder exactly (the
// N=1 stream-stats parity in tests/system_test.cpp rests on this).
class StreamCursor {
 public:
  StreamCursor(const trace::TraceSource& prototype, std::size_t block_cycles)
      : source_(prototype.clone()), buffer_(block_cycles) {
    if (block_cycles == 0)
      throw std::invalid_argument("stream: block_cycles must be > 0");
  }

  bool has_more() {
    if (pos_ == filled_ && !eof_) refill();
    return pos_ < filled_;
  }

  std::size_t available() {
    if (pos_ == filled_ && !eof_) refill();
    return filled_ - pos_;
  }

  FeedResult run(bus::BusSimulator& sim, bus::BusSimulator& baseline,
                 std::size_t count) {
    const bus::RunningTotals d = sim.run(buffer_.data() + pos_, count);
    baseline.run(buffer_.data() + pos_, count);
    pos_ += count;
    return {d.cycles, d.errors};
  }

  void account(core::StreamStats* stats, std::size_t block_cycles) const {
    if (stats == nullptr) return;
    stats->block_cycles = block_cycles;
    stats->blocks += blocks_;
    stats->cycles += streamed_;
    stats->peak_buffer_words = std::max(stats->peak_buffer_words, buffer_.size());
  }

 private:
  void refill() {
    filled_ = source_->next_block(buffer_.data(), buffer_.size());
    pos_ = 0;
    if (filled_ == 0) {
      eof_ = true;
    } else {
      ++blocks_;
      streamed_ += filled_;
    }
  }

  std::unique_ptr<trace::TraceSource> source_;
  std::vector<BusWord> buffer_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  bool eof_ = false;
  std::uint64_t blocks_ = 0;
  std::uint64_t streamed_ = 0;
};

}  // namespace

BusSystem::BusSystem(std::vector<BusLane> lanes) : lanes_(std::move(lanes)) {
  if (lanes_.empty()) throw std::invalid_argument("sys: no buses");
  for (const BusLane& lane : lanes_) {
    if (lane.system == nullptr) throw std::invalid_argument("sys: null lane system");
    if (!(lane.weight > 0.0))
      throw std::invalid_argument("sys: lane weight must be > 0");
  }
  const double vnom = lanes_.front().system->design().node.vdd_nominal;
  for (const BusLane& lane : lanes_)
    // razorlint: allow(float-eq): one regulator drives one rail; designs
    // must agree on the nominal supply exactly, not approximately.
    if (lane.system->design().node.vdd_nominal != vnom)
      throw std::invalid_argument(
          "sys: all buses must share one supply rail (vdd_nominal mismatch)");
  weights_.reserve(lanes_.size());
  for (const BusLane& lane : lanes_) weights_.push_back(lane.weight);
}

namespace {

// The shared closed loop, templated over the lane cursor. Mirrors
// core::run_consecutive_impl / run_consecutive_streamed_impl segment for
// segment: every span runs at one regulator voltage, inside one
// controller window, and ends at a pending change landing — block refills
// subdivide the sim.run calls but never the control arithmetic (span-
// split invariance, DESIGN.md §5), so both cursors report identically.
template <typename Cursor>
SystemRunReport run_system_loop(const std::vector<BusLane>& lanes,
                                const std::vector<double>& weights,
                                const tech::PvtCorner& environment,
                                std::vector<Cursor>& cursors,
                                const SystemRunConfig& config,
                                std::size_t stream_block,
                                core::StreamStats* stats) {
  const std::size_t n_lanes = lanes.size();
  const double vnom = lanes.front().system->design().node.vdd_nominal;
  double floor = 0.0;
  for (const BusLane& lane : lanes)
    floor = std::max(floor, lane.system->dvs_floor(environment.process));
  const double start = config.start_supply > 0.0 ? config.start_supply : vnom;

  std::vector<bus::BusSimulator> sims;
  std::vector<bus::BusSimulator> baselines;
  sims.reserve(n_lanes);
  baselines.reserve(n_lanes);
  for (const BusLane& lane : lanes) {
    sims.push_back(lane.system->make_simulator(environment));
    sims.back().set_engine_mode(config.engine);
    if (config.timing_jitter_sigma > 0.0)
      sims.back().set_timing_jitter(config.timing_jitter_sigma);
    baselines.push_back(make_baseline_sim(*lane.system, environment));
  }

  dvs::VoltageRegulator regulator(start, floor, vnom, config.regulator_delay_cycles);
  dvs::ThresholdController controller(config.controller);
  for (auto& sim : sims) sim.set_supply(regulator.voltage());

  const std::uint64_t window = config.controller.window_cycles;
  const double band_mid =
      0.5 * (config.controller.low_threshold + config.controller.high_threshold);
  const std::vector<double>& temp_axis = lanes.front().system->table().temps();

  SystemRunReport report;
  report.floor_supply = floor;

  std::uint64_t cycle = 0;
  std::uint64_t remaining_window = window;
  std::vector<std::uint64_t> window_errors(n_lanes, 0);
  double supply_sum = 0.0;
  double track_sum = 0.0;
  tech::PvtCorner current = environment;

  // Re-derive the drift corner for the window starting at `at_cycle` and
  // push it into every lane and its lockstep baseline. Disabled schedules
  // never reach a set_environment call, which is what keeps zero-drift
  // runs byte-identical to static-corner runs.
  const auto apply_drift = [&](std::uint64_t at_cycle) {
    if (!config.drift.enabled()) return;
    const tech::PvtCorner next =
        config.drift.corner_at(environment, at_cycle, vnom, temp_axis);
    if (next == current) return;
    current = next;
    ++report.env_updates;
    for (auto& sim : sims) sim.set_environment(next);
    for (auto& baseline : baselines) baseline.set_environment(next);
  };
  apply_drift(0);

  for (;;) {
    bool more = true;
    for (auto& cursor : cursors) more = cursor.has_more() && more;
    if (!more) break;

    const double advanced = regulator.advance(cycle);
    for (auto& sim : sims) sim.set_supply(advanced);

    std::uint64_t planned = remaining_window;
    const std::uint64_t change = regulator.next_change_cycle();
    if (change != dvs::VoltageRegulator::kNoPendingChange && change > cycle)
      planned = std::min(planned, change - cycle);

    // Serve the logical segment across buffer chunks, lockstep on every
    // lane; short only when a stream ends mid-segment.
    std::uint64_t served = 0;
    while (served < planned) {
      std::size_t avail = std::numeric_limits<std::size_t>::max();
      for (auto& cursor : cursors) avail = std::min(avail, cursor.available());
      if (avail == 0) break;
      const auto chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(planned - served, avail));
      for (std::size_t l = 0; l < n_lanes; ++l) {
        const FeedResult fed = cursors[l].run(sims[l], baselines[l], chunk);
        window_errors[l] += fed.errors;
      }
      served += chunk;
    }
    if (served == 0) break;
    supply_sum += sims.front().supply() * static_cast<double>(served);
    cycle += served;
    remaining_window -= served;

    if (remaining_window == 0) {
      const std::uint64_t fused =
          dvs::fuse_window_errors(config.arbitration, window_errors, weights);
      const dvs::VoltageDecision decision = controller.observe_segment(window, fused);
      // The decision belongs to the last cycle of the window (cycle - 1),
      // exactly when the single-bus loop would have issued it.
      if (decision == dvs::VoltageDecision::step_down)
        regulator.request_change(-config.controller.voltage_step, cycle - 1);
      else if (decision == dvs::VoltageDecision::step_up)
        regulator.request_change(+config.controller.voltage_step, cycle - 1);

      track_sum += std::abs(controller.last_window_error_rate() - band_mid);
      ++report.windows;
      if (config.record_series)
        report.series.push_back(
            {cycle, sims.front().supply(), controller.last_window_error_rate()});
      std::fill(window_errors.begin(), window_errors.end(), 0);
      remaining_window = window;
      apply_drift(cycle);
    }
  }
  for (auto& cursor : cursors) cursor.account(stats, stream_block);

  report.cycles = cycle;
  report.average_supply =
      cycle == 0 ? sims.front().supply()
                 : supply_sum / static_cast<double>(cycle);
  report.wall_tracking_error =
      report.windows == 0 ? 0.0 : track_sum / static_cast<double>(report.windows);
  report.per_bus.reserve(n_lanes);
  for (std::size_t l = 0; l < n_lanes; ++l) {
    core::DvsRunReport r;
    r.totals = sims[l].totals();
    r.floor_supply = floor;
    r.average_supply = report.average_supply;
    r.baseline_bus_energy = baselines[l].totals().bus_energy;
    report.per_bus.push_back(std::move(r));
  }
  return report;
}

}  // namespace

SystemRunReport BusSystem::run_closed_loop(const tech::PvtCorner& environment,
                                           const std::vector<trace::Trace>& traces,
                                           const SystemRunConfig& config) const {
  if (traces.size() != lanes_.size())
    throw std::invalid_argument("sys: " + std::to_string(lanes_.size()) +
                                " buses but " + std::to_string(traces.size()) +
                                " traces");
  for (std::size_t l = 0; l < lanes_.size(); ++l)
    check_lane_width(*lanes_[l].system, traces[l].name, traces[l].n_bits);
  // Lockstep: the run ends when the shortest trace does.
  std::size_t limit = traces.front().words.size();
  for (const auto& t : traces) limit = std::min(limit, t.words.size());
  std::vector<TraceCursor> cursors;
  cursors.reserve(traces.size());
  for (const auto& t : traces) cursors.emplace_back(t, limit);
  return run_system_loop(lanes_, weights_, environment, cursors, config, 0, nullptr);
}

SystemRunReport BusSystem::run_closed_loop_streamed(
    const tech::PvtCorner& environment,
    const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
    const SystemRunConfig& config, const core::StreamConfig& stream,
    core::StreamStats* stats) const {
  if (sources.size() != lanes_.size())
    throw std::invalid_argument("sys: " + std::to_string(lanes_.size()) +
                                " buses but " + std::to_string(sources.size()) +
                                " sources");
  for (std::size_t l = 0; l < lanes_.size(); ++l)
    check_lane_width(*lanes_[l].system, sources[l]->name(), sources[l]->n_bits());
  std::vector<StreamCursor> cursors;
  cursors.reserve(sources.size());
  for (const auto& s : sources) cursors.emplace_back(*s, stream.block_cycles);
  return run_system_loop(lanes_, weights_, environment, cursors, config,
                         stream.block_cycles, stats);
}

drift::Schedule schedule_from_spec(const core::DriftSpec& spec,
                                   std::uint64_t cycles) {
  if (!spec.enabled) return {};
  if (!spec.points.empty()) {
    std::vector<drift::Breakpoint> points;
    points.reserve(spec.points.size());
    for (const auto& p : spec.points)
      points.push_back({p.cycle, p.temp_c, p.vth_shift});
    return drift::Schedule::piecewise(std::move(points));
  }
  return drift::Schedule::linear(cycles, spec.temp_start, spec.temp_end,
                                 spec.vth_shift_start, spec.vth_shift_end);
}

}  // namespace razorbus::sys

// Multi-bus shared-supply system (docs/campaigns.md `multi_bus`,
// docs/architecture.md layer map).
//
// The paper evaluates one bus; a realistic SoC deployment hangs several
// buses of different widths and lengths off ONE regulator with ONE DVS
// controller. `BusSystem` models exactly that: N independent
// `bus::BusSimulator`s (each its own design, receiver bank and trace
// stream) advance in lockstep under a shared supply, each bus counts its
// own receiver-bank errors per controller window, and a pluggable
// arbitration policy (dvs::fuse_window_errors) fuses the N window counts
// into the single count the threshold controller sees. Decisions and
// regulator ramping are untouched single-bus machinery.
//
// Contracts, in the spirit of DESIGN.md §5/§12:
//
//  * N=1 PARITY (the load-bearing invariant, tests/system_test.cpp): a
//    one-bus BusSystem report is bit-identical to the single-bus
//    closed-loop drivers (core::run_closed_loop{,_streamed}) — same
//    integer counts, exactly equal doubles, for every arbitration policy
//    (they all reduce to the identity at N=1) and every engine mode.
//    Segments are delimited by controller windows and regulator change
//    landings exactly as the single-bus loop delimits them; the fused
//    window count equals the lane count; and the controller is fed whole
//    windows, which the count-based threshold decision cannot
//    distinguish from the single-bus per-segment feeding.
//  * STREAM PARITY: the streamed form serves logical segments across
//    block refills, so block boundaries never move a control decision;
//    streamed reports are bit-identical to materialized ones.
//  * DRIFT: an enabled drift::Schedule re-derives the operating corner at
//    every controller-window boundary and applies it to all lanes AND
//    their lockstep nominal baselines (the gain under drift compares the
//    DVS bus against a conventional bus aging in the same environment).
//    A disabled schedule executes the exact static-corner code path, so
//    zero-drift runs are byte-identical to static runs
//    (tests/drift_test.cpp). Window-granular application keeps a
//    10^9-cycle streamed drift run at ~10^5 table re-slices and O(block)
//    resident trace memory.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/experiments.hpp"
#include "core/scenario_spec.hpp"
#include "core/system.hpp"
#include "drift/schedule.hpp"
#include "dvs/arbitration.hpp"
#include "tech/corner.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace razorbus::sys {

// One bus of the system. `system` is non-owning and must outlive the
// BusSystem; `weight` is read by the `weighted` arbitration policy.
struct BusLane {
  const core::DvsBusSystem* system = nullptr;
  double weight = 1.0;
};

// Mirrors core::DvsRunConfig field-for-field (so a single-bus config maps
// 1:1 onto the N=1 parity case), plus the system-level knobs.
struct SystemRunConfig {
  dvs::ControllerConfig controller{};
  std::uint64_t regulator_delay_cycles = 3000;  // 2 us at 1.5 GHz
  double start_supply = 0.0;                    // 0 = nominal
  double timing_jitter_sigma = 0.0;
  bool record_series = false;
  bus::EngineMode engine = bus::EngineMode::bit_parallel;
  double lut_tolerance = 0.0;  // provenance, as core::DvsRunConfig
  dvs::ArbitrationPolicy arbitration = dvs::ArbitrationPolicy::max_error;
  drift::Schedule drift{};  // default-constructed = disabled
};

struct SystemRunReport {
  // Per-lane reports in lane order. At N=1, per_bus[0] is bit-identical
  // to the single-bus driver's DvsRunReport (series lives below instead).
  std::vector<core::DvsRunReport> per_bus;
  // One series for the whole system: the shared supply and the FUSED
  // window error rate at each completed window boundary.
  std::vector<core::WindowSample> series;
  std::uint64_t cycles = 0;   // lockstep cycles executed (per lane)
  std::uint64_t windows = 0;  // completed controller windows
  double floor_supply = 0.0;
  double average_supply = 0.0;  // cycle-weighted shared supply
  // Wall-tracking error of the controller: mean |fused window error rate
  // - band midpoint| over completed windows — how tightly the shared
  // loop holds the paper's [low, high] band under arbitration and drift.
  double wall_tracking_error = 0.0;
  std::uint64_t env_updates = 0;  // drift corner changes actually applied

  double total_energy() const {
    double e = 0.0;
    for (const auto& r : per_bus) e += r.totals.total_energy();
    return e;
  }
  double baseline_bus_energy() const {
    double e = 0.0;
    for (const auto& r : per_bus) e += r.baseline_bus_energy;
    return e;
  }
  double energy_gain() const {
    const double base = baseline_bus_energy();
    return base > 0.0 ? 1.0 - total_energy() / base : 0.0;
  }
  double error_rate() const {
    std::uint64_t cyc = 0, err = 0;
    for (const auto& r : per_bus) {
      cyc += r.totals.cycles;
      err += r.totals.errors;
    }
    return cyc ? static_cast<double>(err) / static_cast<double>(cyc) : 0.0;
  }
};

class BusSystem {
 public:
  // Throws std::invalid_argument on an empty lane list, a null lane
  // system, a non-positive weight, or lanes whose designs disagree on the
  // nominal supply (one regulator, one rail).
  explicit BusSystem(std::vector<BusLane> lanes);

  const std::vector<BusLane>& lanes() const { return lanes_; }

  // Materialized run: one trace per lane, lockstep; the run ends when the
  // shortest trace does. Traces wider than their lane throw (the
  // single-bus width rule, per lane).
  SystemRunReport run_closed_loop(const tech::PvtCorner& environment,
                                  const std::vector<trace::Trace>& traces,
                                  const SystemRunConfig& config = {}) const;

  // Streamed run: one source per lane, cloned and drained block by block
  // in lockstep; ends when the first source does. Bit-identical to the
  // materialized form on the same word sequences.
  SystemRunReport run_closed_loop_streamed(
      const tech::PvtCorner& environment,
      const std::vector<std::unique_ptr<trace::TraceSource>>& sources,
      const SystemRunConfig& config = {}, const core::StreamConfig& stream = {},
      core::StreamStats* stats = nullptr) const;

 private:
  std::vector<BusLane> lanes_;
  std::vector<double> weights_;  // lanes_[i].weight, for fuse_window_errors
};

// Resolve a declarative drift spec (core::DriftSpec, docs/campaigns.md
// `drift`) into a schedule: the linear form ramps over `cycles` (the
// job's resolved budget), the piecewise form uses its breakpoints as-is.
// A disabled spec yields a disabled schedule.
drift::Schedule schedule_from_spec(const core::DriftSpec& spec,
                                   std::uint64_t cycles);

}  // namespace razorbus::sys

// Elmore-delay analytics for the bus (paper eqs. 1 and 2, Fig. 9).
//
// Used for first-order reasoning, repeater-sizing seeds and as a fast
// (lower-fidelity) alternative to the transient-simulated lookup tables.
#pragma once

#include "interconnect/geometry.hpp"
#include "tech/device.hpp"

namespace razorbus::interconnect {

// Effective switched capacitance per unit length for a victim whose two
// neighbors contribute Miller factors mf_left/mf_right on the coupling caps:
//   0 = neighbor switches in the same direction,
//   1 = neighbor quiet (or shield),
//   2 = neighbor switches in the opposite direction.
double switched_capacitance_per_m(const WireParasitics& p, double mf_left,
                                  double mf_right);

// Paper eq. (1): worst-case lumped Elmore delay t = R (Cg + 4 Cc) for a wire
// of resistance R with both neighbors switching opposite.
double pattern_worst_delay(double r_total, double cg_total, double cc_total);

// Paper eq. (2): the delay difference between switching pattern I (both
// neighbors opposite) and pattern II per unit Miller-factor step: R * Cc.
double pattern_delay_step(double r_total, double cc_total);

// One repeater stage driving a wire of length `seg_len` terminated by
// `c_load` (next repeater's gate or the receiving flip-flop):
//   t = ln2 [ Rd (Cw + Cself + Cload) + Rw (Cw/2 + Cload) ].
double stage_elmore_delay(double r_driver, double c_driver_self, double r_wire_total,
                          double c_wire_total, double c_load);

// Full in-to-out delay of a repeated bus line: `n_segments` identical stages.
double repeated_line_delay(double r_driver, double c_driver_self, double c_driver_in,
                           double r_wire_total_per_seg, double c_wire_total_per_seg,
                           double c_receiver, int n_segments);

}  // namespace razorbus::interconnect

#include "interconnect/bus_design.hpp"

#include <stdexcept>

#include "util/busword.hpp"
#include "util/units.hpp"

namespace razorbus::interconnect {

NeighborKind BusDesign::left_neighbor(int bit) const {
  if (bit < 0 || bit >= n_bits) throw std::out_of_range("left_neighbor: bad bit");
  return bit % shield_group == 0 ? NeighborKind::shield : NeighborKind::signal;
}

NeighborKind BusDesign::right_neighbor(int bit) const {
  if (bit < 0 || bit >= n_bits) throw std::out_of_range("right_neighbor: bad bit");
  return (bit % shield_group == shield_group - 1 || bit == n_bits - 1)
             ? NeighborKind::shield
             : NeighborKind::signal;
}

int BusDesign::total_tracks() const {
  // A shield before the first group, after every full group, and after a
  // trailing partial group.
  const int groups = (n_bits + shield_group - 1) / shield_group;
  return n_bits + groups + 1;
}

BusDesign BusDesign::paper_bus() {
  BusDesign d;
  d.node = tech::node_130nm();
  d.parasitics = extract_parasitics(WireGeometry::from_node(d.node));
  return d;
}

BusDesign BusDesign::wide_bus(int n_bits) {
  BusDesign d = paper_bus();
  d.n_bits = n_bits;
  d.validate();
  return d;
}

BusDesign BusDesign::modified_bus(double ratio) {
  BusDesign d = paper_bus();
  d.parasitics = scale_coupling_ratio(d.parasitics, ratio);
  return d;
}

BusDesign BusDesign::scaled_bus(const tech::TechnologyNode& node) {
  BusDesign d;
  d.node = node;
  d.parasitics = extract_parasitics(WireGeometry::from_node(node));
  return d;
}

void BusDesign::validate() const {
  if (n_bits <= 0 || shield_group <= 0 || n_segments <= 0)
    throw std::invalid_argument("BusDesign: counts must be positive");
  if (n_bits > BusWord::kMaxBits)
    throw std::invalid_argument("BusDesign: n_bits exceeds BusWord capacity (128)");
  if (length <= 0 || clock_freq <= 0)
    throw std::invalid_argument("BusDesign: length/clock must be positive");
  if (setup_slack_fraction < 0 || setup_slack_fraction >= 1)
    throw std::invalid_argument("BusDesign: bad setup slack fraction");
  if (shadow_delay_fraction <= 0 || shadow_delay_fraction >= 1)
    throw std::invalid_argument("BusDesign: bad shadow delay fraction");
  if (parasitics.r_per_m <= 0 || parasitics.cg_per_m <= 0 || parasitics.cc_per_m <= 0)
    throw std::invalid_argument("BusDesign: parasitics not extracted");
}

}  // namespace razorbus::interconnect

#include "interconnect/geometry.hpp"

#include <cmath>
#include <stdexcept>

namespace razorbus::interconnect {

namespace {
constexpr double kEps0 = 8.8541878128e-12;  // F/m
}

WireGeometry WireGeometry::from_node(const tech::TechnologyNode& node) {
  return {node.wire_width, node.wire_spacing, node.wire_thickness,
          node.ild_height, node.eps_r,        node.resistivity};
}

WireParasitics extract_parasitics(const WireGeometry& g) {
  if (g.width <= 0 || g.spacing <= 0 || g.thickness <= 0 || g.ild_height <= 0)
    throw std::invalid_argument("extract_parasitics: non-positive geometry");

  const double eps = kEps0 * g.eps_r;
  const double w_h = g.width / g.ild_height;
  const double t_h = g.thickness / g.ild_height;
  const double s_h = g.spacing / g.ild_height;

  // Sakurai's fit for the capacitance of a line over a plane (area + fringe).
  const double cg = eps * (1.15 * w_h + 2.80 * std::pow(t_h, 0.222));

  // Sakurai's fit for lateral coupling between two parallel lines.
  const double cc =
      eps * (0.03 * w_h + 0.83 * t_h - 0.07 * std::pow(t_h, 0.222)) *
      std::pow(s_h, -1.34);

  const double r = g.resistivity / (g.width * g.thickness);
  return {r, cg, cc};
}

WireParasitics scale_coupling_ratio(const WireParasitics& p, double ratio_multiplier) {
  if (ratio_multiplier <= 0.0)
    throw std::invalid_argument("scale_coupling_ratio: multiplier must be positive");
  const double c_worst = p.cg_per_m + 4.0 * p.cc_per_m;  // held constant
  const double new_ratio = ratio_multiplier * p.cc_to_cg_ratio();
  const double cg = c_worst / (1.0 + 4.0 * new_ratio);
  const double cc = new_ratio * cg;
  return {p.r_per_m, cg, cc};
}

}  // namespace razorbus::interconnect

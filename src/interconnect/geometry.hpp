// Wire geometry and parasitic extraction.
//
// The paper extracts bus capacitances with a 2D field solver. We use the
// widely validated closed-form fits by Sakurai (ground capacitance of a
// line over a plane, and lateral coupling between parallel lines), which
// capture the same geometric dependencies the Section 6 architecture study
// manipulates: Cg grows with width, Cc grows with thickness and shrinks
// rapidly with spacing.
#pragma once

#include "tech/node.hpp"

namespace razorbus::interconnect {

// Per-unit-length electrical description of one bus wire.
struct WireParasitics {
  double r_per_m;   // series resistance (ohm/m)
  double cg_per_m;  // capacitance to ground plane / shields above-below (F/m)
  double cc_per_m;  // lateral coupling capacitance to ONE neighbor (F/m)

  double cc_to_cg_ratio() const { return cc_per_m / cg_per_m; }
  // Total switched capacitance under the worst-case neighbor pattern
  // (both neighbors switching opposite: Miller factor 2 per side).
  double worst_case_c_per_m() const { return cg_per_m + 4.0 * cc_per_m; }
};

struct WireGeometry {
  double width;      // m
  double spacing;    // m
  double thickness;  // m
  double ild_height; // m (dielectric height to the return plane)
  double eps_r;      // relative permittivity
  double resistivity;// ohm * m

  // Geometry at the node's minimum pitch.
  static WireGeometry from_node(const tech::TechnologyNode& node);
};

// Closed-form parasitic extraction (Sakurai fits).
WireParasitics extract_parasitics(const WireGeometry& g);

// Section 6 architecture transform: return parasitics whose Cc/Cg ratio is
// `ratio_multiplier` times the input's, holding both the wire resistance and
// the worst-case switched capacitance (Cg + 4 Cc) constant. The worst-case
// delay is therefore unchanged while the typical-case delay improves.
WireParasitics scale_coupling_ratio(const WireParasitics& p, double ratio_multiplier);

}  // namespace razorbus::interconnect

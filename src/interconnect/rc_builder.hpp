// Builds and runs the 3-wire characterization clusters.
//
// To characterise one bus wire under a given neighbor switching pattern, we
// simulate a victim wire together with its two physical neighbors over the
// full 6 mm repeated line (n_segments repeater stages, distributed RC with
// coupling). The victim's in-to-out delay and the rail energy drawn by the
// victim's own repeaters are the quantities the lookup tables store — the
// same quantities the paper tabulates with HSPICE.
#pragma once

#include "interconnect/bus_design.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"
#include "tech/corner.hpp"
#include "tech/device.hpp"

namespace razorbus::interconnect {

// What a wire does during a characterization cycle. `hold` keeps the wire
// at logic low, `hold_high` at logic high — the distinction matters only
// for energy (a held-high victim recharges crosstalk droop from the rail).
enum class WireActivity { rise, fall, hold, shield, hold_high };

inline bool switches(WireActivity a) {
  return a == WireActivity::rise || a == WireActivity::fall;
}

struct ClusterSpec {
  WireActivity victim = WireActivity::rise;  // must not be `shield`
  WireActivity left = WireActivity::hold;
  WireActivity right = WireActivity::hold;
  double vdd = 1.2;                  // rail voltage seen by the drivers (V)
  tech::ProcessCorner corner = tech::ProcessCorner::typical;
  double temp_c = 25.0;
};

struct ClusterResult {
  // Victim in-to-out delay (s). Negative when the victim did not switch
  // (hold patterns) or never reached the receiver threshold.
  double delay = -1.0;
  // Rail energy drawn by the victim wire's repeaters during the event (J).
  double victim_energy = 0.0;
  // True when all wires settled to within 5% of a rail by simulation end.
  bool settled = false;
};

class ClusterCharacterizer {
 public:
  ClusterCharacterizer(BusDesign design, tech::DriverModel driver);

  const BusDesign& design() const { return design_; }

  // Run one transient characterization.
  ClusterResult run(const ClusterSpec& spec) const;

  // In-to-out delay for the worst-case pattern (victim rises, both
  // neighbors fall) at the given conditions.
  double worst_case_delay(double vdd, tech::ProcessCorner corner, double temp_c) const;
  // Fastest switching pattern delay (both neighbors rising with the victim).
  double best_case_delay(double vdd, tech::ProcessCorner corner, double temp_c) const;

  // Sections per repeater segment in the distributed RC model.
  static constexpr int kSectionsPerSegment = 3;

 private:
  BusDesign design_;
  tech::DriverModel driver_;
};

// Sizes `design.repeater_size` (in place) so that the worst-case in-to-out
// delay equals `design.main_capture_limit()` at the worst-case corner and
// nominal supply (net of the corner's IR drop), reproducing the paper's
// sizing philosophy. Returns the chosen size. Throws std::runtime_error if
// no size in [lo, hi] meets the target.
double size_repeaters(BusDesign& design, const tech::DriverModel& driver,
                      const tech::PvtCorner& sizing_corner, double lo = 8.0,
                      double hi = 512.0);

}  // namespace razorbus::interconnect

#include "interconnect/rc_builder.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "interconnect/elmore.hpp"
#include "util/units.hpp"

namespace razorbus::interconnect {

namespace {

constexpr double kEventTime = 50e-12;  // first-stage switch time in the run
constexpr double kDt = 1e-12;

// Per-wire bookkeeping produced while building the cluster circuit.
struct BuiltWire {
  std::vector<std::size_t> driver_indices;  // one per repeater stage
  spice::NodeId out_node = spice::kNoNode;  // receiver-end node
  bool starts_low = true;                   // logic value before the event
  std::vector<spice::NodeId> all_nodes;
};

}  // namespace

ClusterCharacterizer::ClusterCharacterizer(BusDesign design, tech::DriverModel driver)
    : design_(std::move(design)), driver_(std::move(driver)) {
  design_.validate();
  if (design_.repeater_size <= 0.0)
    throw std::invalid_argument("ClusterCharacterizer: repeater_size not set");
}

ClusterResult ClusterCharacterizer::run(const ClusterSpec& spec) const {
  if (spec.victim == WireActivity::shield)
    throw std::invalid_argument("cluster: victim cannot be a shield");
  if (!driver_.conducts(spec.corner, spec.temp_c, spec.vdd))
    throw std::domain_error("cluster: drivers do not conduct at this supply");

  const int n_seg = design_.n_segments;
  const int k_sec = kSectionsPerSegment;
  const double r_seg = design_.parasitics.r_per_m * design_.segment_length();
  const double cg_seg = design_.parasitics.cg_per_m * design_.segment_length();
  const double cc_seg = design_.parasitics.cc_per_m * design_.segment_length();
  const double r_drv = driver_.effective_resistance(design_.repeater_size, spec.corner,
                                                    spec.temp_c, spec.vdd);
  const double c_self = driver_.self_capacitance(design_.repeater_size);
  const double c_in = driver_.input_capacitance(design_.repeater_size);
  const double c_rx = driver_.input_capacitance(design_.receiver_size);

  spice::Circuit circuit;
  const spice::NodeId vdd_rail = circuit.add_fixed_node("vdd", spec.vdd);
  const spice::NodeId shield = circuit.add_fixed_node("shield", 0.0);

  // Fraction of segment capacitance attached to each node along a segment:
  // half-section shares at the ends, full sections inside.
  std::vector<double> cap_share(static_cast<std::size_t>(k_sec) + 1);
  for (int i = 0; i <= k_sec; ++i)
    cap_share[static_cast<std::size_t>(i)] =
        (i == 0 || i == k_sec) ? 0.5 / k_sec : 1.0 / k_sec;

  auto build_wire = [&](const std::string& name, WireActivity activity) -> BuiltWire {
    BuiltWire wire;
    const bool starts_low =
        activity != WireActivity::fall && activity != WireActivity::hold_high;
    wire.starts_low = starts_low;

    spice::NodeId prev_seg_end = spice::kNoNode;
    for (int s = 0; s < n_seg; ++s) {
      // Stage driver.
      spice::Driver drv;
      drv.vdd_rail = vdd_rail;
      drv.r_up = r_drv;
      drv.r_dn = r_drv;
      // Wire level at segment s alternates with stage parity.
      const bool seg_high = (s % 2 == 0) ? !starts_low : starts_low;
      drv.initial_up = seg_high;
      if (s == 0) {
        if (switches(activity))
          drv.schedule.push_back({kEventTime, !drv.initial_up});
      } else {
        drv.in = prev_seg_end;
        // Input gate load of this repeater sits on the previous segment end.
        circuit.add_capacitor(prev_seg_end, shield, c_in);
      }

      // Segment RC ladder: node 0 is the driver output.
      std::vector<spice::NodeId> seg_nodes;
      for (int i = 0; i <= k_sec; ++i) {
        seg_nodes.push_back(
            circuit.add_node(name + ".s" + std::to_string(s) + ".n" + std::to_string(i)));
        wire.all_nodes.push_back(seg_nodes.back());
      }
      drv.out = seg_nodes.front();
      wire.driver_indices.push_back(circuit.add_driver(std::move(drv)));
      circuit.add_capacitor(seg_nodes.front(), shield, c_self);

      for (int i = 0; i < k_sec; ++i)
        circuit.add_resistor(seg_nodes[static_cast<std::size_t>(i)],
                             seg_nodes[static_cast<std::size_t>(i) + 1],
                             r_seg / k_sec);
      for (int i = 0; i <= k_sec; ++i)
        circuit.add_capacitor(seg_nodes[static_cast<std::size_t>(i)], shield,
                              cg_seg * cap_share[static_cast<std::size_t>(i)]);
      prev_seg_end = seg_nodes.back();
    }
    circuit.add_capacitor(prev_seg_end, shield, c_rx);
    wire.out_node = prev_seg_end;
    return wire;
  };

  // Couple two built wires (or a wire to the shield when `b` is null).
  auto couple = [&](const BuiltWire& a, const BuiltWire* b) {
    for (std::size_t i = 0; i < a.all_nodes.size(); ++i) {
      const double share = cap_share[i % (static_cast<std::size_t>(k_sec) + 1)];
      const spice::NodeId other = b ? b->all_nodes[i] : shield;
      circuit.add_capacitor(a.all_nodes[i], other, cc_seg * share);
    }
  };

  const BuiltWire victim = build_wire("victim", spec.victim);
  BuiltWire left_wire;
  BuiltWire right_wire;
  const bool left_is_wire = spec.left != WireActivity::shield;
  const bool right_is_wire = spec.right != WireActivity::shield;
  if (left_is_wire) left_wire = build_wire("left", spec.left);
  if (right_is_wire) right_wire = build_wire("right", spec.right);

  couple(victim, left_is_wire ? &left_wire : nullptr);
  couple(victim, right_is_wire ? &right_wire : nullptr);
  // Aggressors' far sides are adjacent to further bus wires; approximating
  // them as quiet (shield-like) keeps the cluster small while preserving
  // the victim's coupling environment.
  if (left_is_wire) couple(left_wire, nullptr);
  if (right_is_wire) couple(right_wire, nullptr);

  // Simulation horizon: generous multiple of the first-order delay estimate.
  const double est = repeated_line_delay(r_drv, c_self, c_in, r_seg,
                                         cg_seg + 4.0 * cc_seg, c_rx, n_seg);
  spice::TransientConfig config;
  config.dt = kDt;
  config.t_stop = std::min(5e-9, std::max(1.0e-9, kEventTime + 3.0 * est));

  spice::TransientSimulator sim(circuit, config);
  const spice::TransientResult result = sim.run();

  ClusterResult out;
  for (const auto di : victim.driver_indices)
    out.victim_energy += result.driver_rail_energy(di);

  if (switches(spec.victim)) {
    // Direction at the receiver: first stage follows the event direction,
    // each further stage inverts.
    const bool out_rises = (spec.victim == WireActivity::rise) == ((n_seg - 1) % 2 == 0);
    const auto cross = out_rises ? result.last_rise_crossing(victim.out_node)
                                 : result.last_fall_crossing(victim.out_node);
    out.delay = cross ? (*cross - kEventTime) : -1.0;
  }

  out.settled = true;
  auto check_settled = [&](const BuiltWire& wire) {
    for (const auto node : wire.all_nodes) {
      const double v = result.final_voltage(node);
      if (v > 0.05 * spec.vdd && v < 0.95 * spec.vdd) out.settled = false;
    }
  };
  check_settled(victim);
  if (left_is_wire) check_settled(left_wire);
  if (right_is_wire) check_settled(right_wire);
  return out;
}

double ClusterCharacterizer::worst_case_delay(double vdd, tech::ProcessCorner corner,
                                              double temp_c) const {
  ClusterSpec spec;
  spec.victim = WireActivity::rise;
  spec.left = WireActivity::fall;
  spec.right = WireActivity::fall;
  spec.vdd = vdd;
  spec.corner = corner;
  spec.temp_c = temp_c;
  const ClusterResult r = run(spec);
  if (r.delay < 0.0) throw std::runtime_error("worst_case_delay: victim never switched");
  return r.delay;
}

double ClusterCharacterizer::best_case_delay(double vdd, tech::ProcessCorner corner,
                                             double temp_c) const {
  ClusterSpec spec;
  spec.victim = WireActivity::rise;
  spec.left = WireActivity::rise;
  spec.right = WireActivity::rise;
  spec.vdd = vdd;
  spec.corner = corner;
  spec.temp_c = temp_c;
  const ClusterResult r = run(spec);
  if (r.delay < 0.0) throw std::runtime_error("best_case_delay: victim never switched");
  return r.delay;
}

double size_repeaters(BusDesign& design, const tech::DriverModel& driver,
                      const tech::PvtCorner& sizing_corner, double lo, double hi) {
  design.validate();
  const double target = design.main_capture_limit();
  const double vdd = sizing_corner.effective_supply(design.node.vdd_nominal);

  auto delay_for = [&](double size) {
    BusDesign candidate = design;
    candidate.repeater_size = size;
    const ClusterCharacterizer chr(candidate, driver);
    return chr.worst_case_delay(vdd, sizing_corner.process, sizing_corner.temp_c);
  };

  // Find a bracket [lo_size (too slow), hi_size (fast enough)].
  double lo_size = lo;
  if (delay_for(lo_size) <= target)
    throw std::runtime_error("size_repeaters: minimum size already meets target");
  double hi_size = lo;
  bool bracketed = false;
  while (hi_size < hi) {
    hi_size = std::min(hi, hi_size * 2.0);
    if (delay_for(hi_size) <= target) {
      bracketed = true;
      break;
    }
    lo_size = hi_size;
  }
  if (!bracketed)
    throw std::runtime_error("size_repeaters: no size in range meets the delay target");

  for (int iter = 0; iter < 24 && (hi_size - lo_size) > 0.25; ++iter) {
    const double mid = 0.5 * (lo_size + hi_size);
    if (delay_for(mid) <= target)
      hi_size = mid;
    else
      lo_size = mid;
  }
  design.repeater_size = hi_size;
  return hi_size;
}

}  // namespace razorbus::interconnect

#include "interconnect/elmore.hpp"

#include <cmath>
#include <stdexcept>

namespace razorbus::interconnect {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}

double switched_capacitance_per_m(const WireParasitics& p, double mf_left,
                                  double mf_right) {
  return p.cg_per_m + (mf_left + mf_right) * p.cc_per_m;
}

double pattern_worst_delay(double r_total, double cg_total, double cc_total) {
  return r_total * (cg_total + 4.0 * cc_total);
}

double pattern_delay_step(double r_total, double cc_total) { return r_total * cc_total; }

double stage_elmore_delay(double r_driver, double c_driver_self, double r_wire_total,
                          double c_wire_total, double c_load) {
  return kLn2 * (r_driver * (c_wire_total + c_driver_self + c_load) +
                 r_wire_total * (0.5 * c_wire_total + c_load));
}

double repeated_line_delay(double r_driver, double c_driver_self, double c_driver_in,
                           double r_wire_total_per_seg, double c_wire_total_per_seg,
                           double c_receiver, int n_segments) {
  if (n_segments < 1) throw std::invalid_argument("repeated_line_delay: n_segments < 1");
  double total = 0.0;
  for (int s = 0; s < n_segments; ++s) {
    const double c_load = (s + 1 < n_segments) ? c_driver_in : c_receiver;
    total += stage_elmore_delay(r_driver, c_driver_self, r_wire_total_per_seg,
                                c_wire_total_per_seg, c_load);
  }
  return total;
}

}  // namespace razorbus::interconnect

// Logical + electrical description of the DVS bus (paper Fig. 3).
//
// The paper's configuration: 32 signal wires, 6 mm long, routed at minimum
// pitch on a global metal layer, a shield wire after every 4 signal wires,
// repeaters every 1.5 mm, 1.5 GHz clock, repeaters sized so the worst-case
// in-to-out delay is 600 ps (10% of the cycle reserved for setup + skew) at
// the worst-case PVT corner and neighbor switching pattern at 1.2 V.
#pragma once

#include "interconnect/geometry.hpp"
#include "tech/corner.hpp"
#include "tech/node.hpp"

namespace razorbus::interconnect {

// What sits next to a given signal wire on one side.
enum class NeighborKind { signal, shield };

struct BusDesign {
  tech::TechnologyNode node;
  WireParasitics parasitics{};

  int n_bits = 32;
  int shield_group = 4;    // a shield wire after every `shield_group` signals
  double length = 6e-3;    // m
  int n_segments = 4;      // repeater every length / n_segments
  double clock_freq = 1.5e9;
  double setup_slack_fraction = 0.10;   // cycle fraction reserved for setup/skew
  double shadow_delay_fraction = 1.0 / 3.0;  // shadow clock delay (33% of cycle)

  double repeater_size = 0.0;  // unit-inverter multiples; set by size_repeaters()
  double receiver_size = 4.0;  // receiving flip-flop input load, unit multiples

  // --- Timing budget ---
  double clock_period() const { return 1.0 / clock_freq; }
  // Max in-to-out delay captured correctly by the main flip-flop.
  double main_capture_limit() const {
    return clock_period() * (1.0 - setup_slack_fraction);
  }
  // Max delay captured by the shadow latch (delayed clock).
  double shadow_capture_limit() const {
    return main_capture_limit() + shadow_delay_fraction * clock_period();
  }
  double segment_length() const { return length / n_segments; }

  // --- Physical layout queries ---
  NeighborKind left_neighbor(int bit) const;
  NeighborKind right_neighbor(int bit) const;
  // Signal + shield track count (routing footprint).
  int total_tracks() const;

  // The paper's bus on the 0.13 um node (repeaters not yet sized).
  static BusDesign paper_bus();
  // Paper-equivalent bus at a different word width, 1..128 wires (16-wire
  // peripheral buses, 64-wire memory buses, 128-wire cacheline flits). The
  // shield cadence and the per-wire electrical design are unchanged, so
  // the characterised delay/energy tables are shared with every other
  // width (see DESIGN.md §3/§10).
  static BusDesign wide_bus(int n_bits);
  // Same bus with the Section 6 modified interconnect architecture:
  // Cc/Cg multiplied by `ratio` (1.95 in the paper) at constant R and
  // constant worst-case load.
  static BusDesign modified_bus(double ratio = 1.95);
  // Paper-equivalent bus on a scaled technology node (Section 6 study).
  static BusDesign scaled_bus(const tech::TechnologyNode& node);

  // Throws std::invalid_argument when structurally inconsistent.
  void validate() const;
};

}  // namespace razorbus::interconnect

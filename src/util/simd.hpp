// Portable SIMD primitives for the multi-operating-point engine.
//
// The multi-point hot loop (bus::MultiPointEngine, DESIGN.md §13) keeps its
// per-point accumulators and combo-table rows structure-of-arrays; the only
// vector shapes it needs are elementwise double adds and byte ORs over
// short contiguous rows (one slot per operating point). This header is that
// shape: four row kernels with a scalar reference implementation, a
// compile-time gate and a runtime ISA dispatch.
//
//   * Compile-time gate: configure with -DRAZORBUS_SIMD=OFF (the CMake
//     option defines RAZORBUS_SIMD_DISABLED) and every kernel is the plain
//     scalar loop — the build has no intrinsics at all. CI keeps this leg
//     green so results never depend on the host ISA.
//   * Runtime dispatch: with the gate on, the backend is chosen once per
//     process — AVX2 on x86-64 when the CPU reports it (the AVX2 bodies are
//     compiled with a function-level target attribute, so the baseline
//     build stays generic), NEON on aarch64 (architecturally guaranteed),
//     scalar otherwise.
//
// Bit-identity contract: every backend performs the SAME IEEE-754 double
// operations per element as the scalar loop (elementwise add only — no FMA,
// no reassociation, no horizontal reductions), so switching backends never
// changes a result bit. This is what lets the multi-point parity suite
// demand exact equality against the per-point scalar engine on any host.
#pragma once

#include <cstddef>
#include <cstdint>

namespace razorbus::simd {

// Lanes per double vector of the active backend (1 for scalar). Rows padded
// to a multiple of this never enter the kernels' scalar tails; padding is
// a throughput knob only, never a correctness requirement.
std::size_t double_lanes();

// Name of the active backend: "avx2", "neon" or "scalar".
const char* backend_name();

// True when a vector backend is active (compile gate on AND ISA present).
bool enabled();

// acc[i] += x[i]
void add_rows(double* acc, const double* x, std::size_t n);

// acc[i] += x[i] + y[i]  (per element: one add, then one accumulate —
// exactly the `bus_energy += dynamic + leakage` chain of the scalar engine)
void add2_rows(double* acc, const double* x, const double* y, std::size_t n);

// acc[i] += c
void add_const(double* acc, double c, std::size_t n);

// acc[i] |= x[i]
void or_bytes(std::uint8_t* acc, const std::uint8_t* x, std::size_t n);

}  // namespace razorbus::simd

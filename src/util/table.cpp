#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace razorbus {

std::string format_fixed(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (rows_.empty()) throw std::logic_error("Table::add before Table::row");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_fixed(value, precision));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace razorbus

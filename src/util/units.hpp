// Physical unit helpers.
//
// All quantities in the library are plain `double`s in SI units (seconds,
// volts, ohms, farads, joules, meters). These literal suffixes make the
// intent explicit at construction sites: `600.0_ps`, `1.2_V`, `6.0_mm`.
#pragma once

namespace razorbus {

inline namespace literals {

constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }

constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }

constexpr double operator""_ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kohm(long double v) { return static_cast<double>(v) * 1e3; }

constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }

constexpr double operator""_J(long double v) { return static_cast<double>(v); }
constexpr double operator""_pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fJ(long double v) { return static_cast<double>(v) * 1e-15; }

constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_mm(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }

constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }

}  // namespace literals

// Common conversions for reporting.
constexpr double to_ps(double seconds) { return seconds * 1e12; }
constexpr double to_ns(double seconds) { return seconds * 1e9; }
constexpr double to_mV(double volts) { return volts * 1e3; }
constexpr double to_fF(double farads) { return farads * 1e15; }
constexpr double to_fJ(double joules) { return joules * 1e15; }
constexpr double to_pJ(double joules) { return joules * 1e12; }
constexpr double to_um(double meters) { return meters * 1e6; }
constexpr double to_mm(double meters) { return meters * 1e3; }

// Two supply voltages closer than this are the same operating point.
// Closed-loop arithmetic (regulator steps, IR-drop scaling) reconstructs
// voltages in floating point, so "the same supply" can arrive a few ULPs
// away from a cached value; a sub-nanovolt difference never changes the
// interpolated tables. Shared by BusSimulator::set_supply and
// VoltageRegulator::request_change so the two layers agree on what counts
// as a real voltage change.
constexpr double kSupplyToleranceVolts = 1e-9;

// Boltzmann constant times charge ratio: thermal voltage kT/q at `temp_c`.
constexpr double thermal_voltage(double temp_c) {
  return 8.617333262e-5 * (temp_c + 273.15);  // k/q in V/K times T in K
}

}  // namespace razorbus

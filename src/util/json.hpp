// Minimal JSON document builder for machine-readable bench/experiment
// output (BENCH_*.json and the --json flag of the scenario runner).
//
// Build-only (no parsing): insertion-ordered objects, shortest round-trip
// number formatting, UTF-8 passthrough with control/quote escaping.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace razorbus {

class Json {
 public:
  Json() = default;  // null
  Json(bool value) : type_(Type::boolean), bool_(value) {}
  Json(int value) : type_(Type::integer), int_(value) {}
  Json(long long value) : type_(Type::integer), int_(value) {}
  Json(unsigned long value) : type_(Type::integer), int_(static_cast<long long>(value)) {}
  Json(unsigned long long value)
      : type_(Type::integer), int_(static_cast<long long>(value)) {}
  Json(double value) : type_(Type::number), num_(value) {}
  Json(const char* value) : type_(Type::string), str_(value) {}
  Json(std::string value) : type_(Type::string), str_(std::move(value)) {}

  static Json object() {
    Json j;
    j.type_ = Type::object;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::array;
    return j;
  }

  bool is_null() const { return type_ == Type::null; }

  // Object member access: inserts (preserving order) or overwrites.
  // Throws on non-objects.
  Json& set(const std::string& key, Json value);
  // Array append. Throws on non-arrays.
  Json& push(Json value);

  std::string dump(int indent = 2) const;

 private:
  enum class Type { null, boolean, integer, number, string, array, object };

  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::null;
  bool bool_ = false;
  long long int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace razorbus

// Minimal JSON document type for machine-readable bench/experiment output
// (BENCH_*.json, the --json flag of the scenario runner) and for the
// declarative scenario-campaign specs (DESIGN.md §11).
//
// Builder side: insertion-ordered objects, shortest round-trip number
// formatting, UTF-8 passthrough with control/quote escaping. Parser side:
// strict RFC-8259 recursive descent (no comments, no trailing commas) with
// positioned errors, \uXXXX decoding (surrogate pairs included), and
// integer/double discrimination so parse(dump(x)) reproduces x exactly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace razorbus {

// Thrown by Json::parse on malformed input; `offset` is the byte position
// of the error in the input text.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset);
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  Json() = default;  // null
  Json(bool value) : type_(Type::boolean), bool_(value) {}
  Json(int value) : type_(Type::integer), int_(value) {}
  Json(long long value) : type_(Type::integer), int_(value) {}
  Json(unsigned long value) : type_(Type::integer), int_(static_cast<long long>(value)) {}
  Json(unsigned long long value)
      : type_(Type::integer), int_(static_cast<long long>(value)) {}
  Json(double value) : type_(Type::number), num_(value) {}
  Json(const char* value) : type_(Type::string), str_(value) {}
  Json(std::string value) : type_(Type::string), str_(std::move(value)) {}

  static Json object() {
    Json j;
    j.type_ = Type::object;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::array;
    return j;
  }

  // Strict parse of a complete JSON document (throws JsonParseError).
  static Json parse(const std::string& text);
  // Reads and parses a JSON file; throws std::runtime_error when the file
  // cannot be opened, JsonParseError on bad content.
  static Json parse_file(const std::string& path);

  // ------------------------------------------------------------- inspection
  bool is_null() const { return type_ == Type::null; }
  bool is_bool() const { return type_ == Type::boolean; }
  bool is_integer() const { return type_ == Type::integer; }
  // True for any numeric value (integer or floating).
  bool is_number() const { return type_ == Type::integer || type_ == Type::number; }
  bool is_string() const { return type_ == Type::string; }
  bool is_array() const { return type_ == Type::array; }
  bool is_object() const { return type_ == Type::object; }

  // Typed reads; throw std::logic_error on a type mismatch. as_double
  // accepts integers as well (the parser keeps "2" and "2.0" distinct).
  bool as_bool() const;
  long long as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  // Array/object element count (0 for scalars).
  std::size_t size() const;

  // Array element access; throws std::out_of_range / std::logic_error.
  const Json& at(std::size_t index) const;

  // Object member lookup: nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  // Object member access; throws std::out_of_range when absent.
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  // Insertion-ordered members / items (empty for scalars).
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }
  const std::vector<Json>& items() const { return items_; }

  // ------------------------------------------------------------- building
  // Object member access: inserts (preserving order) or overwrites.
  // Throws on non-objects.
  Json& set(const std::string& key, Json value);
  // Array append. Throws on non-arrays.
  Json& push(Json value);
  // Remove an object member if present; returns whether it existed.
  bool erase(const std::string& key);

  std::string dump(int indent = 2) const;

 private:
  enum class Type { null, boolean, integer, number, string, array, object };

  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::null;
  bool bool_ = false;
  long long int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace razorbus

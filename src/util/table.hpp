// Aligned-text and CSV table output for benches and examples.
//
// Benches print the same rows/series the paper reports; this helper keeps
// that output readable on a terminal and machine-parsable when redirected
// to a .csv file.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace razorbus {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Start a new row. Subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 2);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Pretty-print with column alignment.
  void print(std::ostream& os) const;
  // Comma-separated output (no alignment padding).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Format helper: fixed-point with the given precision.
std::string format_fixed(double value, int precision);

}  // namespace razorbus

#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace razorbus {

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Shortest decimal representation that round-trips to the same double.
void format_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; emit null like most serialisers.
    out += "null";
    return;
  }
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::null) type_ = Type::object;
  if (type_ != Type::object) throw std::logic_error("Json::set on a non-object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ == Type::null) type_ = Type::array;
  if (type_ != Type::array) throw std::logic_error("Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::integer: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", int_);
      out += buf;
      break;
    }
    case Type::number: format_number(out, num_); break;
    case Type::string: escape_string(out, str_); break;
    case Type::array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_string(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace razorbus

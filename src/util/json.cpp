#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace razorbus {

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Shortest decimal representation that round-trips to the same double.
void format_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; emit null like most serialisers.
    out += "null";
    return;
  }
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

// ------------------------------------------------------------------ parser

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  // Deep enough for any report this repo writes, shallow enough that a
  // malicious "[[[[..." cannot blow the native stack.
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char take() {
    if (done()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!done()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (done() || peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (done()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (!done() && peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (done() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(key, parse_value(depth + 1));  // duplicate keys: last one wins
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (!done() && peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      skip_ws();
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape digit");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;  // UTF-8 bytes pass through untouched
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate: pair required
            if (take() != '\\' || take() != 'u') fail("unpaired surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    if (done() || peek() < '0' || peek() > '9') fail("invalid number");
    const char first_digit = peek();
    ++pos_;
    if (first_digit == '0') {
      if (!done() && peek() >= '0' && peek() <= '9') fail("leading zero in number");
    } else {
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!done() && peek() == '.') {
      integral = false;
      ++pos_;
      if (done() || peek() < '0' || peek() > '9') fail("digit required after '.'");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      if (done() || peek() < '0' || peek() > '9') fail("digit required in exponent");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    // "-0" is a floating negative zero, not the integer 0: keeping it a
    // double makes dump(parse(s)) reproduce the emitter's "-0" exactly.
    if (integral && token != "-0") {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      // Integers beyond the long long range degrade to double (still a
      // valid JSON number, just past exact integer representation).
      if (errno != ERANGE && end == token.c_str() + token.size()) return Json(v);
    }
    return Json(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonParseError::JsonParseError(const std::string& message, std::size_t offset)
    : std::runtime_error("JSON parse error at offset " + std::to_string(offset) + ": " +
                         message),
      offset_(offset) {}

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

bool Json::as_bool() const {
  if (type_ != Type::boolean) throw std::logic_error("Json::as_bool on a non-boolean");
  return bool_;
}

long long Json::as_int() const {
  if (type_ != Type::integer) throw std::logic_error("Json::as_int on a non-integer");
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::integer) return static_cast<double>(int_);
  if (type_ != Type::number) throw std::logic_error("Json::as_double on a non-number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::string) throw std::logic_error("Json::as_string on a non-string");
  return str_;
}

std::size_t Json::size() const {
  if (type_ == Type::array) return items_.size();
  if (type_ == Type::object) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::array) throw std::logic_error("Json::at(index) on a non-array");
  if (index >= items_.size()) throw std::out_of_range("Json array index out of range");
  return items_[index];
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::object) return nullptr;
  for (const auto& member : members_)
    if (member.first == key) return &member.second;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr) throw std::out_of_range("Json object has no key '" + key + "'");
  return *value;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::null) type_ = Type::object;
  if (type_ != Type::object) throw std::logic_error("Json::set on a non-object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ == Type::null) type_ = Type::array;
  if (type_ != Type::array) throw std::logic_error("Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

bool Json::erase(const std::string& key) {
  if (type_ != Type::object) return false;
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->first == key) {
      members_.erase(it);
      return true;
    }
  }
  return false;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::integer: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", int_);
      out += buf;
      break;
    }
    case Type::number: format_number(out, num_); break;
    case Type::string: escape_string(out, str_); break;
    case Type::array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_string(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace razorbus

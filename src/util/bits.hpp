// C++17-portable bit utilities (std::bit_cast / std::popcount arrive only
// with C++20, which this codebase does not require).
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace razorbus {

template <typename To, typename From>
To bit_cast(const From& from) {
  static_assert(sizeof(To) == sizeof(From), "bit_cast: size mismatch");
  static_assert(std::is_trivially_copyable<To>::value &&
                    std::is_trivially_copyable<From>::value,
                "bit_cast: trivially copyable types required");
  To to;
  std::memcpy(&to, &from, sizeof(To));
  return to;
}

inline int popcount32(std::uint32_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcount(x);
#else
  x = x - ((x >> 1) & 0x55555555u);
  x = (x & 0x33333333u) + ((x >> 2) & 0x33333333u);
  x = (x + (x >> 4)) & 0x0F0F0F0Fu;
  return static_cast<int>((x * 0x01010101u) >> 24);
#endif
}

inline int popcount64(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(x);
#else
  x = x - ((x >> 1) & 0x5555555555555555ull);
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0Full;
  return static_cast<int>((x * 0x0101010101010101ull) >> 56);
#endif
}

}  // namespace razorbus

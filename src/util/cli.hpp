// Minimal command-line flag parsing for examples and bench harnesses.
//
// Supports `--name=value` and `--flag` forms. Unknown flags are an error so
// typos in experiment sweeps fail loudly instead of silently using defaults
// (`--thread=8` must not run single-threaded). Binaries should enter
// through cli_main(), which turns parse errors and reject_unused() failures
// into a clear stderr message and exit code 2 instead of an uncaught
// exception abort.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace razorbus {

class CliFlags {
 public:
  // Parses argv; throws std::invalid_argument on malformed input.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  // Names seen on the command line but never queried; used to reject typos.
  std::vector<std::string> unused() const;
  // Throws if any flag was provided that the program never asked about.
  void reject_unused() const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

// Guarded main() body for example/tool binaries: parses argv into CliFlags,
// runs `body`, and maps any std::exception — malformed flags, a
// reject_unused() failure, or a domain error from the body itself — to a
// one-line stderr message and exit code 2. The body is expected to query
// its flags up front and call flags.reject_unused() before doing real work,
// so typo'd invocations fail before, not after, an expensive run.
int cli_main(int argc, const char* const* argv,
             const std::function<int(const CliFlags&)>& body);

}  // namespace razorbus

#include "util/simd.hpp"

// Backend selection (see simd.hpp). The vector bodies live behind
// function-level target attributes so the translation unit compiles with
// the project's generic flags; the dispatcher picks a table of function
// pointers once, at first use.

#if !defined(RAZORBUS_SIMD_DISABLED)
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAZORBUS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define RAZORBUS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace razorbus::simd {

namespace {

// ------------------------------------------------------------- scalar

void scalar_add_rows(double* acc, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i];
}

void scalar_add2_rows(double* acc, const double* x, const double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i] + y[i];
}

void scalar_add_const(double* acc, double c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += c;
}

void scalar_or_bytes(std::uint8_t* acc, const std::uint8_t* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] |= x[i];
}

// --------------------------------------------------------------- AVX2

#if defined(RAZORBUS_SIMD_X86)

__attribute__((target("avx2"))) void avx2_add_rows(double* acc, const double* x,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(acc + i);
    const __m256d b = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a, b));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

__attribute__((target("avx2"))) void avx2_add2_rows(double* acc, const double* x,
                                                    const double* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(acc + i);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a, sum));
  }
  for (; i < n; ++i) acc[i] += x[i] + y[i];
}

__attribute__((target("avx2"))) void avx2_add_const(double* acc, double c,
                                                    std::size_t n) {
  const __m256d cv = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), cv));
  for (; i < n; ++i) acc[i] += c;
}

__attribute__((target("avx2"))) void avx2_or_bytes(std::uint8_t* acc,
                                                   const std::uint8_t* x,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) acc[i] |= x[i];
}

#endif  // RAZORBUS_SIMD_X86

// --------------------------------------------------------------- NEON

#if defined(RAZORBUS_SIMD_NEON)

void neon_add_rows(double* acc, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), vld1q_f64(x + i)));
  for (; i < n; ++i) acc[i] += x[i];
}

void neon_add2_rows(double* acc, const double* x, const double* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t sum = vaddq_f64(vld1q_f64(x + i), vld1q_f64(y + i));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), sum));
  }
  for (; i < n; ++i) acc[i] += x[i] + y[i];
}

void neon_add_const(double* acc, double c, std::size_t n) {
  const float64x2_t cv = vdupq_n_f64(c);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), cv));
  for (; i < n; ++i) acc[i] += c;
}

void neon_or_bytes(std::uint8_t* acc, const std::uint8_t* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(acc + i, vorrq_u8(vld1q_u8(acc + i), vld1q_u8(x + i)));
  for (; i < n; ++i) acc[i] |= x[i];
}

#endif  // RAZORBUS_SIMD_NEON

// ----------------------------------------------------------- dispatch

struct Backend {
  const char* name;
  std::size_t double_lanes;
  void (*add_rows)(double*, const double*, std::size_t);
  void (*add2_rows)(double*, const double*, const double*, std::size_t);
  void (*add_const)(double*, double, std::size_t);
  void (*or_bytes)(std::uint8_t*, const std::uint8_t*, std::size_t);
};

constexpr Backend kScalar = {"scalar", 1,          scalar_add_rows,
                             scalar_add2_rows,     scalar_add_const,
                             scalar_or_bytes};

Backend select_backend() {
#if defined(RAZORBUS_SIMD_X86)
  if (__builtin_cpu_supports("avx2"))
    return Backend{"avx2", 4, avx2_add_rows, avx2_add2_rows, avx2_add_const,
                   avx2_or_bytes};
#elif defined(RAZORBUS_SIMD_NEON)
  return Backend{"neon", 2, neon_add_rows, neon_add2_rows, neon_add_const,
                 neon_or_bytes};
#endif
  return kScalar;
}

const Backend& backend() {
  static const Backend selected = select_backend();
  return selected;
}

}  // namespace

std::size_t double_lanes() { return backend().double_lanes; }

const char* backend_name() { return backend().name; }

bool enabled() { return backend().double_lanes > 1; }

void add_rows(double* acc, const double* x, std::size_t n) {
  backend().add_rows(acc, x, n);
}

void add2_rows(double* acc, const double* x, const double* y, std::size_t n) {
  backend().add2_rows(acc, x, y, n);
}

void add_const(double* acc, double c, std::size_t n) {
  backend().add_const(acc, c, n);
}

void or_bytes(std::uint8_t* acc, const std::uint8_t* x, std::size_t n) {
  backend().or_bytes(acc, x, n);
}

}  // namespace razorbus::simd

#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

namespace razorbus {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      const std::string name = arg.substr(2, eq - 2);
      if (name.empty())
        throw std::invalid_argument("CliFlags: empty flag name in '" + arg + "'");
      values_[name] = arg.substr(eq + 1);
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string CliFlags::get(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliFlags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

void CliFlags::reject_unused() const {
  const auto stray = unused();
  if (!stray.empty()) {
    std::string msg = "unknown flag(s):";
    for (const auto& name : stray) msg += " --" + name;
    throw std::invalid_argument(msg);
  }
}

int cli_main(int argc, const char* const* argv,
             const std::function<int(const CliFlags&)>& body) {
  const char* program = argc > 0 ? argv[0] : "program";
  try {
    const CliFlags flags(argc, argv);
    return body(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", program, e.what());
    return 2;
  }
}

}  // namespace razorbus

// BusWord: the value type of the width-generic bus datapath.
//
// A fixed-capacity little-endian bit vector over std::uint64_t lanes
// (2 lanes = up to 128 wires), wide enough for every scenario the roadmap
// names — 16-wire peripheral buses, the paper's 32-wire memory read bus,
// 64-wire memory buses and 128-wire cacheline flits. It is a plain value
// type (trivially copyable, no allocation) so the per-cycle hot paths can
// keep words in registers exactly like the historical std::uint32_t did.
//
// Interop contract (see DESIGN.md §10): BusWord converts implicitly FROM
// any unsigned 64-bit-or-narrower integer (the low lane) and implicitly TO
// integral types by truncation to the low lane (bool converts via any()).
// The truncating direction exists so that the large pre-width-generic API
// surface — tests, benches, examples driving 32-bit words — keeps working
// unchanged; new code should prefer the explicit low32()/low64()/lane()
// accessors. Mixed-operand overloads of ==/!=/&/|/^ are provided so that
// expressions like `word == 0xA5u` or `mask & 1u` resolve unambiguously.
#pragma once

#include <cstdint>
#include <ostream>
#include <type_traits>

#include "util/bits.hpp"

namespace razorbus {

class BusWord {
 public:
  static constexpr int kLanes = 2;
  static constexpr int kMaxBits = 64 * kLanes;

  constexpr BusWord() : lanes_{0, 0} {}
  // Implicit by design: a plain integer is a bus word in the low lane.
  constexpr BusWord(std::uint64_t low) : lanes_{low, 0} {}  // NOLINT
  static constexpr BusWord from_lanes(std::uint64_t lo, std::uint64_t hi) {
    BusWord w;
    w.lanes_[0] = lo;
    w.lanes_[1] = hi;
    return w;
  }

  // Low `n` bits set (n in [0, kMaxBits]).
  static constexpr BusWord mask_low(int n) {
    BusWord w;
    for (int l = 0; l < kLanes; ++l) {
      const int bits = n - 64 * l;
      w.lanes_[l] = bits >= 64 ? ~0ull : bits <= 0 ? 0ull : (1ull << bits) - 1ull;
    }
    return w;
  }

  constexpr std::uint64_t lane(int i) const { return lanes_[i]; }
  constexpr std::uint64_t low64() const { return lanes_[0]; }
  constexpr std::uint32_t low32() const { return static_cast<std::uint32_t>(lanes_[0]); }

  constexpr bool test(int bit) const {
    return ((lanes_[bit >> 6] >> (bit & 63)) & 1ull) != 0;
  }
  void set(int bit) { lanes_[bit >> 6] |= 1ull << (bit & 63); }

  constexpr bool any() const { return (lanes_[0] | lanes_[1]) != 0; }
  constexpr bool none() const { return !any(); }
  int popcount() const { return popcount64(lanes_[0]) + popcount64(lanes_[1]); }

  // Field extraction for the shield-group combo tables: `width` (<= 64)
  // bits starting at `start`, straddling the lane boundary if needed.
  constexpr std::uint64_t extract(int start, int width) const {
    const std::uint64_t raw = (*this >> start).lanes_[0];
    return width >= 64 ? raw : raw & ((1ull << width) - 1ull);
  }

  constexpr BusWord operator~() const { return from_lanes(~lanes_[0], ~lanes_[1]); }

  constexpr BusWord operator<<(int n) const {
    if (n <= 0) return *this;
    if (n >= kMaxBits) return BusWord();
    if (n >= 64) return from_lanes(0, lanes_[0] << (n - 64));
    return from_lanes(lanes_[0] << n, (lanes_[1] << n) | (lanes_[0] >> (64 - n)));
  }
  constexpr BusWord operator>>(int n) const {
    if (n <= 0) return *this;
    if (n >= kMaxBits) return BusWord();
    if (n >= 64) return BusWord(lanes_[1] >> (n - 64));
    return from_lanes((lanes_[0] >> n) | (lanes_[1] << (64 - n)), lanes_[1] >> n);
  }

  BusWord& operator&=(const BusWord& o) {
    lanes_[0] &= o.lanes_[0];
    lanes_[1] &= o.lanes_[1];
    return *this;
  }
  BusWord& operator|=(const BusWord& o) {
    lanes_[0] |= o.lanes_[0];
    lanes_[1] |= o.lanes_[1];
    return *this;
  }
  BusWord& operator^=(const BusWord& o) {
    lanes_[0] ^= o.lanes_[0];
    lanes_[1] ^= o.lanes_[1];
    return *this;
  }

  friend constexpr BusWord operator&(const BusWord& a, const BusWord& b) {
    return from_lanes(a.lanes_[0] & b.lanes_[0], a.lanes_[1] & b.lanes_[1]);
  }
  friend constexpr BusWord operator|(const BusWord& a, const BusWord& b) {
    return from_lanes(a.lanes_[0] | b.lanes_[0], a.lanes_[1] | b.lanes_[1]);
  }
  friend constexpr BusWord operator^(const BusWord& a, const BusWord& b) {
    return from_lanes(a.lanes_[0] ^ b.lanes_[0], a.lanes_[1] ^ b.lanes_[1]);
  }
  // Mixed-operand forms: without them `word & 1u` would be ambiguous
  // between the BusWord overload (user conversion on the right) and the
  // built-in integer operator (user conversion on the left).
  friend constexpr BusWord operator&(const BusWord& a, std::uint64_t b) {
    return a & BusWord(b);
  }
  friend constexpr BusWord operator&(std::uint64_t a, const BusWord& b) {
    return BusWord(a) & b;
  }
  friend constexpr BusWord operator|(const BusWord& a, std::uint64_t b) {
    return a | BusWord(b);
  }
  friend constexpr BusWord operator|(std::uint64_t a, const BusWord& b) {
    return BusWord(a) | b;
  }
  friend constexpr BusWord operator^(const BusWord& a, std::uint64_t b) {
    return a ^ BusWord(b);
  }
  friend constexpr BusWord operator^(std::uint64_t a, const BusWord& b) {
    return BusWord(a) ^ b;
  }

  friend constexpr bool operator==(const BusWord& a, const BusWord& b) {
    return a.lanes_[0] == b.lanes_[0] && a.lanes_[1] == b.lanes_[1];
  }
  friend constexpr bool operator!=(const BusWord& a, const BusWord& b) {
    return !(a == b);
  }
  friend constexpr bool operator==(const BusWord& a, std::uint64_t b) {
    return a == BusWord(b);
  }
  friend constexpr bool operator==(std::uint64_t a, const BusWord& b) {
    return BusWord(a) == b;
  }
  friend constexpr bool operator!=(const BusWord& a, std::uint64_t b) {
    return !(a == BusWord(b));
  }
  friend constexpr bool operator!=(std::uint64_t a, const BusWord& b) {
    return !(BusWord(a) == b);
  }
  // Lexicographic (high lane first) — for ordered containers.
  friend constexpr bool operator<(const BusWord& a, const BusWord& b) {
    return a.lanes_[1] != b.lanes_[1] ? a.lanes_[1] < b.lanes_[1]
                                      : a.lanes_[0] < b.lanes_[0];
  }

  // Truncating conversion to integral types (bool = any bit set). Kept
  // implicit so pre-width-generic call sites compile unchanged; prefer
  // low32()/low64() in new code.
  template <typename T, std::enable_if_t<std::is_integral<T>::value, int> = 0>
  constexpr operator T() const {
    if constexpr (std::is_same_v<T, bool>) {
      return any();
    } else {
      return static_cast<T>(lanes_[0]);
    }
  }

  friend std::ostream& operator<<(std::ostream& os, const BusWord& w);

 private:
  std::uint64_t lanes_[kLanes];
};

static_assert(std::is_trivially_copyable<BusWord>::value, "BusWord must stay POD-like");

inline std::ostream& operator<<(std::ostream& os, const BusWord& w) {
  char buf[2 + 32 + 1];
  int n = 0;
  buf[n++] = '0';
  buf[n++] = 'x';
  bool started = false;
  for (int nibble = 2 * BusWord::kLanes * 8 - 1; nibble >= 0; --nibble) {
    const int v = static_cast<int>((w.lanes_[nibble >> 4] >> ((nibble & 15) * 4)) & 0xf);
    if (!started && v == 0 && nibble != 0) continue;
    started = true;
    buf[n++] = "0123456789abcdef"[v];
  }
  buf[n] = '\0';
  return os << buf;
}

}  // namespace razorbus

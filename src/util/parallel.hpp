// Deterministic work-sharding substrate (DESIGN.md §9).
//
// The characterization grid and the experiment sweeps are embarrassingly
// parallel, but every result in this codebase is contractually bit-identical
// run to run. The executor therefore separates the WORK DECOMPOSITION from
// the THREAD COUNT: callers split work into a fixed number of shards that
// depends only on the problem (one per grid point, supply, sample, trace),
// shard `s` always runs on lane `s % threads` (static assignment, no work
// stealing), and per-shard results land in a slot indexed by `s` so callers
// merge them in shard order. Any thread count — including 1 — then produces
// byte-identical tables, totals and reports.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace razorbus::util {

// Fixed-size pool of persistent worker threads. The calling thread
// participates as lane 0, so a pool of `threads() == N` uses N-1 background
// workers and `ThreadPool(1)` runs everything inline on the caller.
class ThreadPool {
 public:
  // `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return threads_; }

  // Run fn(shard) for every shard in [0, n_shards) and block until all are
  // done. Shard s executes on lane s % threads() — the assignment is static,
  // so which thread runs a shard never depends on timing. With more than
  // one thread every shard runs even if another shard throws; the exception
  // with the LOWEST shard index is rethrown (single-threaded execution
  // stops at the first throw, which is the same exception). Calls from
  // inside a shard run inline on the calling lane (no deadlock, no extra
  // parallelism); concurrent top-level calls from different threads
  // serialise, one job at a time.
  void parallel_for(std::size_t n_shards, const std::function<void(std::size_t)>& fn)
      EXCLUDES(submit_mutex_, mutex_);

 private:
  void worker_loop(unsigned lane);
  // Process this lane's shards of the current job, trapping exceptions into
  // the job's per-shard slots.
  void run_lane(unsigned lane, const std::function<void(std::size_t)>& fn,
                std::size_t n_shards, std::vector<std::exception_ptr>& errors);

  const unsigned threads_;
  std::vector<std::thread> workers_;

  // Serialises top-level parallel_for calls: the job slots below are
  // single-buffered, so concurrent callers queue up rather than trampling
  // a job in flight.
  Mutex submit_mutex_ ACQUIRED_BEFORE(mutex_);
  Mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // bumped per job; workers wake on change
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  unsigned lanes_remaining_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
  const std::function<void(std::size_t)>* job_fn_ GUARDED_BY(mutex_) = nullptr;
  std::size_t job_shards_ GUARDED_BY(mutex_) = 0;
  std::vector<std::exception_ptr>* job_errors_ GUARDED_BY(mutex_) = nullptr;
};

// Map [0, n_shards) through fn on the pool; results are returned in shard
// order regardless of which thread computed them. The result type must be
// default-constructible.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n_shards, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(n_shards);
  pool.parallel_for(n_shards, [&](std::size_t s) { out[s] = fn(s); });
  return out;
}

// Process-wide pool used by the parallel experiment drivers and the LUT
// builder. Defaults to the hardware concurrency; the bench scenario
// runner's shared --threads=N flag overrides it. Resizing tears down and
// rebuilds the pool — never call it while experiments are running.
ThreadPool& global_pool();
void set_global_threads(unsigned threads);  // 0 = hardware concurrency
unsigned global_threads();

// Statistically independent seed for a shard's private Rng stream:
// SplitMix64 finalizer over (seed, shard). Depends only on the logical
// shard index, never on the executing thread, so sharded Monte-Carlo draws
// are reproducible at any thread count.
constexpr std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t shard) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace razorbus::util

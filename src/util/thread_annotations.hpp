// Clang thread-safety analysis annotations (DESIGN.md §9).
//
// The macro set below expands to clang's capability attributes when the
// analysis is available and to nothing elsewhere, so gcc builds are
// unaffected while the clang CI leg compiles with -Wthread-safety -Werror
// and statically proves every access to a guarded member happens under its
// mutex. libstdc++'s std::mutex carries no annotations, so the annotated
// util::Mutex / util::MutexLock wrappers below are what guarded structures
// (util::ThreadPool, the LUT characterization cache memo) lock with.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define RAZORBUS_TSA(x) __attribute__((x))
#else
#define RAZORBUS_TSA(x)  // analysis needs clang; annotations compile away
#endif

#define CAPABILITY(x) RAZORBUS_TSA(capability(x))
#define SCOPED_CAPABILITY RAZORBUS_TSA(scoped_lockable)
#define GUARDED_BY(x) RAZORBUS_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) RAZORBUS_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) RAZORBUS_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) RAZORBUS_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) RAZORBUS_TSA(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) RAZORBUS_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) RAZORBUS_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) RAZORBUS_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) RAZORBUS_TSA(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) RAZORBUS_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS RAZORBUS_TSA(no_thread_safety_analysis)

namespace razorbus::util {

// std::mutex with the CAPABILITY attribute: members declared
// GUARDED_BY(some Mutex) are statically checked on clang.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

// RAII lock over util::Mutex. Condition-variable waits go through wait();
// callers re-check their predicate in a plain while loop at function scope,
// where the analysis can see the capability is held (predicate lambdas are
// separate functions to the analysis and would defeat the guarded-member
// checks).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : lock_(m.m_) {}
  ~MutexLock() RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Atomically release, block until notified, reacquire. The analysis does
  // not model the temporary release inside cv.wait, which is sound here:
  // the capability is held again whenever control returns to the caller.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace razorbus::util

// Streaming statistics and histograms used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace razorbus {

// Welford-style streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
// bins so totals always match the number of samples added. NaN samples are
// unbinnable: they are counted in dropped() (with their weight) and never
// touch the bins or the total.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  // Bin for `x`; bins() (one past the last bin) when x is NaN. Casting NaN
  // to an integer is undefined behavior, so the NaN check must come before
  // any arithmetic on x.
  std::size_t bin_index(double x) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  // Total weight of NaN samples rejected by add().
  double dropped() const { return dropped_; }
  // Fraction of total mass in bin i (0 if empty histogram).
  double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
  double dropped_ = 0.0;
};

// Discrete histogram keyed by exact values (e.g. supply-voltage grid points).
// Used for Fig. 6 style "% of time spent at each supply voltage" plots.
// NaN keys would break the map's strict weak ordering; they are counted in
// dropped() instead.
class DiscreteHistogram {
 public:
  void add(double key, double weight = 1.0);
  double total() const { return total_; }
  double dropped() const { return dropped_; }
  // Sorted (key, fraction-of-total) pairs.
  std::vector<std::pair<double, double>> fractions() const;

 private:
  std::map<double, double> counts_;
  double total_ = 0.0;
  double dropped_ = 0.0;
};

// Percentile of a sample vector (linear interpolation, p in [0,100]).
// The input is copied and sorted; intended for reporting, not hot paths.
double percentile(std::vector<double> samples, double p);

}  // namespace razorbus

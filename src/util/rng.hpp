// Small deterministic random number generator.
//
// Experiments must be reproducible run-to-run and machine-to-machine, so we
// use a fixed xoshiro256** implementation instead of std::mt19937 +
// distribution objects (whose outputs are not portable across standard
// library implementations).
#pragma once

#include <cmath>
#include <cstdint>

namespace razorbus {

// xoshiro256** by Blackman & Vigna (public domain reference implementation),
// seeded through SplitMix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Unbiased via rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  bool bernoulli(double p) { return next_double() < p; }

  // Standard normal via Box-Muller (no cached second value, keeps state small).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  // 32-bit word with each bit set independently with probability `p`.
  std::uint32_t random_word(double p = 0.5) {
    // razorlint: allow(float-eq): exactly-representable default picks the
    // one-draw fast path; callers passing computed p take the per-bit path.
    if (p == 0.5) return static_cast<std::uint32_t>(next_u64());
    std::uint32_t w = 0;
    for (int i = 0; i < 32; ++i)
      if (bernoulli(p)) w |= (1u << i);
    return w;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace razorbus

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace razorbus {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range/bins");
}

std::size_t Histogram::bin_index(double x) const {
  if (std::isnan(x)) return counts_.size();  // before any cast: NaN->size_t is UB
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

void Histogram::add(double x, double weight) {
  const std::size_t i = bin_index(x);
  if (i >= counts_.size()) {
    dropped_ += weight;
    return;
  }
  counts_[i] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::fraction(std::size_t i) const {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

void DiscreteHistogram::add(double key, double weight) {
  if (std::isnan(key)) {  // NaN breaks the map's ordering (x < NaN is always false)
    dropped_ += weight;
    return;
  }
  counts_[key] += weight;
  total_ += weight;
}

std::vector<std::pair<double, double>> DiscreteHistogram::fractions() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_)
    out.emplace_back(key, total_ > 0.0 ? count / total_ : 0.0);
  return out;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace razorbus

#include "util/parallel.hpp"

#include <algorithm>
#include <memory>

namespace razorbus::util {

namespace {

// True while the current thread is executing a shard; nested parallel_for
// calls then run inline instead of deadlocking on the pool.
// razorlint: allow(no-mutable-static): per-thread reentrancy flag — purely a
// scheduling decision; which shard runs where never changes results.
thread_local bool t_in_shard = false;

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : threads_(resolve_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned lane = 1; lane < threads_; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_lane(unsigned lane, const std::function<void(std::size_t)>& fn,
                          std::size_t n_shards, std::vector<std::exception_ptr>& errors) {
  t_in_shard = true;
  for (std::size_t s = lane; s < n_shards; s += threads_) {
    try {
      fn(s);
    } catch (...) {
      errors[s] = std::current_exception();
    }
  }
  t_in_shard = false;
}

void ThreadPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n_shards = 0;
    std::vector<std::exception_ptr>* errors = nullptr;
    {
      // Plain while-wait (not a predicate lambda): the guarded reads stay at
      // function scope where -Wthread-safety can see the lock is held.
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen) lock.wait(start_cv_);
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      n_shards = job_shards_;
      errors = job_errors_;
    }
    run_lane(lane, *fn, n_shards, *errors);
    {
      MutexLock lock(mutex_);
      if (--lanes_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n_shards,
                              const std::function<void(std::size_t)>& fn) {
  if (n_shards == 0) return;
  if (threads_ == 1 || n_shards == 1 || t_in_shard) {
    // Inline path: shards run in order on the caller, so the first throw is
    // already the lowest-shard exception.
    for (std::size_t s = 0; s < n_shards; ++s) fn(s);
    return;
  }

  // One job at a time: the slots below (job_fn_, job_errors_,
  // lanes_remaining_) are single-buffered, so a second top-level caller —
  // e.g. two application threads driving experiments on global_pool() —
  // must wait for the current job to drain. Nested calls never get here
  // (t_in_shard diverted them to the inline path above), so this cannot
  // self-deadlock.
  MutexLock submit(submit_mutex_);

  std::vector<std::exception_ptr> errors(n_shards);
  {
    MutexLock lock(mutex_);
    job_fn_ = &fn;
    job_shards_ = n_shards;
    job_errors_ = &errors;
    lanes_remaining_ = threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  run_lane(0, fn, n_shards, errors);

  {
    MutexLock lock(mutex_);
    while (lanes_remaining_ != 0) lock.wait(done_cv_);
    job_fn_ = nullptr;
    job_errors_ = nullptr;
  }
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

namespace {
// razorlint: allow(no-mutable-static): THE process-wide pool (DESIGN.md §9) —
// the one sanctioned global, guarded by g_pool_mutex below.
Mutex g_pool_mutex;
// razorlint: allow(no-mutable-static): see g_pool_mutex above.
std::unique_ptr<ThreadPool> g_pool GUARDED_BY(g_pool_mutex);
}  // namespace

ThreadPool& global_pool() {
  MutexLock lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_threads(unsigned threads) {
  MutexLock lock(g_pool_mutex);
  const unsigned resolved = resolve_threads(threads);
  if (g_pool && g_pool->threads() == resolved) return;
  g_pool.reset();  // join the old workers before spawning replacements
  g_pool = std::make_unique<ThreadPool>(resolved);
}

unsigned global_threads() {
  MutexLock lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return g_pool->threads();
}

}  // namespace razorbus::util
